#pragma once
// One shard of a sharded simulation: a partition of the model owning its
// own discrete-event kernel (a full BasicSimulator over the calendar-queue
// EventQueue), plus the outgoing side of the cross-shard mailboxes.
//
// Model code running inside a shard schedules local events through sim()
// exactly as in a single-threaded simulation; a handoff whose destination
// lives in another shard goes through post(), which stages the packet in
// the per-pair mailbox for the destination's next window.  post() is only
// legal with deliver_at >= (current window end), i.e. at least `lookahead`
// ahead of the shard clock — the conservative-synchronisation contract
// the window scheduler derives from the minimum cross-shard link latency.

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace emcast::sim {

class ShardedSimulator;
class Shard;

/// Invoked once per drained cross-shard message, in deterministic
/// (deliver_at, source shard, seq) order, while the shard is between
/// windows; the handler schedules the model's local reaction via
/// shard.sim().schedule_at(msg.deliver_at, ...).  Handlers must ONLY
/// schedule locally — calling Shard::post from a handler is forbidden
/// (and asserted): drain phases run concurrently across workers, so a
/// post issued mid-drain could race the destination's own drain of the
/// same mailbox.  Posting is legal exactly where models do it anyway —
/// from events executing inside a window.
using ShardMsgHandler = std::function<void(Shard&, const CrossShardMsg&)>;

/// Batch flavour of the drain handler: invoked ONCE per drain with the
/// round's full message array, already in the deterministic (deliver_at,
/// source shard, seq) order.  Same contract otherwise — schedule locally
/// only, never post.  When installed it replaces the per-message handler
/// for the round, letting the Engine turn a sorted drain into a single
/// schedule_batch (the messages form one nondecreasing time run).
using ShardBatchMsgHandler =
    std::function<void(Shard&, const CrossShardMsg*, std::size_t)>;

class Shard {
 public:
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// The shard-local kernel.  Scheduling through it is exactly the
  /// single-threaded API; components need not know they are sharded.
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  std::size_t index() const { return index_; }
  std::size_t shard_count() const { return outgoing_.size(); }
  Time now() const { return sim_.now(); }

  /// The conservative lookahead the window scheduler runs under.
  Time lookahead() const { return lookahead_; }

  /// Hand `p` to `dest_shard`, arriving at `deliver_at`.  The arrival
  /// must respect the lookahead contract: deliver_at >= now + lookahead.
  /// (Violations would let a message land inside an already-executing
  /// window; the destination kernel's schedule_at also rejects any time
  /// in its past, so a broken model fails loudly, not silently.)
  void post(std::size_t dest_shard, const Packet& p, std::int32_t dest_host,
            Time deliver_at) {
    assert(dest_shard != index_ && "post to self: schedule locally instead");
    assert(!in_drain_ &&
           "post from a message handler: handlers may only schedule "
           "locally (see ShardMsgHandler)");
    assert(deliver_at >= sim_.now() + post_floor(dest_shard) &&
           "cross-shard post violates the lookahead contract");
    outgoing_[dest_shard]->post(p, dest_host, deliver_at);
  }

  /// Batch post: hand a train of `n` packets to `dest_shard` with one
  /// mailbox free-space check and one ring publish (see
  /// ShardMailbox::post_batch).  Each item must satisfy the lookahead
  /// contract for this PAIR: deliver_at >= now + the pair's effective
  /// lookahead (post_floor(dest_shard)), which is >= the scalar floor and
  /// strictly tighter when a pair lookahead matrix is installed.
  void post_batch(std::size_t dest_shard, const DeliveryItem* items,
                  std::size_t n) {
    assert(dest_shard != index_ && "post to self: schedule locally instead");
    assert(!in_drain_ &&
           "post from a message handler: handlers may only schedule "
           "locally (see ShardMsgHandler)");
#ifndef NDEBUG
    const Time floor = sim_.now() + post_floor(dest_shard);
    for (std::size_t i = 0; i < n; ++i) {
      assert(items[i].at >= floor &&
             "cross-shard post violates the lookahead contract");
    }
#endif
    if (n != 0) outgoing_[dest_shard]->post_batch(items, n);
  }

  /// The effective lower bound on (deliver_at - now) for posts to
  /// `dest_shard`: the scalar lookahead floor, or the pair-specific floor
  /// when a lookahead matrix is installed (+inf for a pair the matrix
  /// declares edge-free — any post to it is a contract violation).
  Time post_floor(std::size_t dest_shard) const {
    return post_floor_.empty() ? lookahead_ : post_floor_[dest_shard];
  }

  std::uint64_t events_executed() const { return sim_.events_executed(); }
  std::uint64_t messages_received() const { return messages_received_; }

  /// Arena introspection for the zero-allocation steady-state proofs.
  std::size_t drain_buffer_capacity() const { return drain_buf_.capacity(); }
  const ShardMailbox* incoming(std::size_t source) const {
    return incoming_[source].get();
  }

 private:
  friend class ShardedSimulator;
  friend class ProcessSimulator;
  Shard() = default;

  /// Warm rewind for a new run (ShardedSimulator::reset): discard the
  /// kernel's pending events with its arenas kept warm, rewind the
  /// incoming mailboxes (rings, spill vectors and sequence counters —
  /// producers are quiescent between runs by the round protocol), keep
  /// the drain-buffer arena, restart telemetry, and take the (possibly
  /// re-derived) lookahead for the next run.  Never allocates.
  void reset(Time lookahead);

  /// Between-windows step (destination worker thread): drain every
  /// incoming mailbox, sort the round's messages into the deterministic
  /// (deliver_at, source shard, seq) order, and hand each to the model's
  /// message handler for local scheduling.  Returns the message count.
  std::size_t drain_and_schedule();

  Simulator sim_;
  std::size_t index_ = 0;
  Time lookahead_ = 0;
  /// Outgoing mailboxes indexed by destination shard (self = nullptr).
  /// The pointers target the destination shard's incoming array, so the
  /// producer side is this shard's worker thread by construction.
  std::vector<ShardMailbox*> outgoing_;
  /// Incoming mailboxes indexed by source shard (self = nullptr).
  std::vector<std::unique_ptr<ShardMailbox>> incoming_;
  std::vector<CrossShardMsg> drain_buf_;  ///< per-round merge staging
  /// Per-destination lookahead floors when a pair matrix is installed
  /// (min of the pair entry and every plan epoch's scalar); empty means
  /// the scalar lookahead_ bounds every pair.  Debug-assert data only —
  /// the window protocol's safety derives from the scheduler's bound.
  std::vector<Time> post_floor_;
  const ShardMsgHandler* handler_ = nullptr;
  const ShardBatchMsgHandler* batch_handler_ = nullptr;
  std::uint64_t messages_received_ = 0;
  /// True while drain_and_schedule runs its handlers (assert-only guard
  /// for the no-post-from-handler contract above).
  bool in_drain_ = false;
};

}  // namespace emcast::sim
