#pragma once
// Sharded parallel simulation: N shards — each a full single-threaded
// discrete-event kernel over its own calendar-queue pending set — advanced
// in lockstep rounds under conservative time-window synchronisation.
//
// The classic conservative-PDES argument (cf. UNISON-for-ns-3): if every
// cross-shard interaction takes at least `lookahead` of simulated time,
// then during the window [T, T + lookahead) — T the global minimum next
// event time — no shard can affect another *within* the window, so all
// shards may execute their window events concurrently with no rollback.
// Cross-shard handoffs are staged in per-(source, destination) SPSC
// mailboxes and drained at the window barrier, sorted into deterministic
// (deliver_at, source shard, seq) order before local scheduling.
//
// A round is two spin-barrier phases:
//
//   drain:    each shard merges its incoming mailboxes into its kernel,
//             then contributes its next-event time to a shared atomic
//             min-reduction (over the order-preserving integer time image)
//   barrier   -- all drains complete; the reduction is final
//   process:  every thread reads the same reduced minimum T, derives the
//             same window end W = min(T + lookahead, horizon), and runs
//             its shards' kernels over events strictly before W
//   barrier   -- all windows complete; mailboxes quiescent again
//
// Shards and worker threads are independent axes: S shards multiplex over
// T <= S workers in fixed contiguous blocks.  The schedule — windows,
// drain order, local event order — is a pure function of the model and
// the partition, so the same sharding produces byte-identical traces for
// ANY worker count, including T = 1.  That is the property the
// differential tests pin: single-threaded reference == 1 shard == K
// shards, for every thread count.
//
// Determinism vs. the unsharded Simulator holds at the model level: event
// *times* are computed identically (same float operands in the same
// order), so the set of (time, payload) tuples matches bit-for-bit;
// within-shard tie order at equal times follows local scheduling order,
// which model-level canonical trace ordering (sort by time image + stable
// payload key) makes irrelevant — see experiments/sharded_multigroup.

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/shard.hpp"
#include "sim/window_policy.hpp"
#include "util/barrier.hpp"
#include "util/types.hpp"

namespace emcast::sim {

struct ShardedConfig {
  std::size_t shards = 2;
  /// Worker threads; 0 = min(shards, hardware_concurrency).  Purely a
  /// throughput knob — results are identical for every value.
  std::size_t threads = 0;
  /// Conservative lookahead: a strict lower bound on the simulated-time
  /// delay of any cross-shard interaction (derive it from the minimum
  /// cross-shard link latency).  Must be > 0.
  Time lookahead = 0;
  /// Per-(source, destination) mailbox ring capacity (messages staged in
  /// one window beyond this spill into a vector — correct but amortised).
  std::size_t mailbox_capacity = 4096;
  /// Pin worker t to core t (best-effort; Linux only).
  bool pin_threads = false;
  /// Optional per-shard-pair lookahead matrix, flattened row-major
  /// ([src * shards + dst]): a strict lower bound on the simulated-time
  /// delay of any cross-shard interaction from src into dst.  +infinity
  /// declares the ordered pair edge-free (no src->dst messages ever).
  /// Empty = the uniform scalar above bounds every pair.  See
  /// ShardedSimulator::set_lookahead_matrix for the full contract.
  std::vector<Time> lookahead_matrix;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(const ShardedConfig& config);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t thread_count() const { return threads_; }
  Time lookahead() const { return config_.lookahead; }
  Shard& shard(std::size_t i) { return *shards_[i]; }
  const Shard& shard(std::size_t i) const { return *shards_[i]; }

  /// Install the model's cross-shard message handler (required before
  /// run() whenever shard_count() > 1 and any post() can happen).
  void set_message_handler(ShardMsgHandler handler);

  /// Install a batch drain handler instead: invoked once per drain with
  /// the round's sorted message array (see ShardBatchMsgHandler).
  /// Replaces any per-message handler.
  void set_batch_message_handler(ShardBatchMsgHandler handler);

  /// Advance every shard until all queues drain or the global clock
  /// passes `until` (events at exactly `until` are executed, matching
  /// Simulator::run).  Returns the number of events executed this call.
  std::uint64_t run(Time until = kTimeInfinity);

  /// Rewind every shard for another simulation, keeping all arenas warm:
  /// per-shard kernels (reset_discarding — beyond-horizon leftovers are
  /// expected after a bounded run), mailbox rings/spill vectors, drain
  /// buffers.  Telemetry (rounds, events, messages) restarts at zero; the
  /// message handler and the shard/thread topology are retained —
  /// shard count, worker count and mailbox capacity are construction-time
  /// choices.  `lookahead` <= 0 keeps the current value; a positive value
  /// re-derives the conservative window width for the next run (it must
  /// be finite, or std::invalid_argument).  Only callable between runs
  /// (run() is synchronous; a reset issued from inside a model event
  /// lands on a mid-run kernel and throws std::logic_error).  Never
  /// allocates.
  void reset(Time lookahead = 0.0);

  /// Install a piecewise-constant lookahead plan for subsequent runs —
  /// the epoch-based remap used by churn experiments whose cross-shard
  /// edge set changes mid-run (tree repairs add and remove edges, so the
  /// minimum cross-shard delay is a step function of simulated time).
  ///
  /// Contract: during epoch e (from plan[e].from until plan[e+1].from),
  /// every cross-shard post() issued at time u has deliver_at >=
  /// u + plan[e].lookahead; before plan.front().from the construction
  /// lookahead applies.  The window scheduler then derives each window as
  ///
  ///   w = min(tmin + L(tmin),  min over epoch starts b in (tmin, w) of
  ///                            b + L(b))
  ///
  /// — a pure function of (tmin, plan), so the remap happens at a window
  /// boundary, identically on every worker thread, and determinism across
  /// shard/thread counts is untouched.  Safety: any post at u < w
  /// satisfies deliver_at >= u + L(u) >= w by the clamping above.
  ///
  /// Epochs must be sorted by strictly increasing `from`, with every
  /// lookahead finite and > 0.  Each shard's post()-assert floor becomes
  /// min(construction lookahead, min over plan) while the plan is
  /// installed.  An empty plan restores uniform-lookahead behaviour.
  /// reset() with an explicit (positive) lookahead — the rebind seam the
  /// Engine's remap overload drives — clears the plan, since it was
  /// derived for the old routing; a keep-current reset(0) retains it, so
  /// warm re-runs of the same schedule re-install nothing.
  void set_lookahead_plan(std::vector<LookaheadEpoch> plan);
  const std::vector<LookaheadEpoch>& lookahead_plan() const {
    return policy_.plan();
  }

  /// Install a per-shard-pair lookahead matrix, flattened row-major
  /// ([src * shards + dst]; shards² entries): matrix[src][dst] is a strict
  /// lower bound on (deliver_at − post time) for every src→dst post, with
  /// +infinity declaring the ordered pair edge-free (the scheduler then
  /// derives no bound from it, and any src→dst post is a contract
  /// violation).  The window scheduler widens each shard's window from
  /// the uniform  w = tmin + L  to the per-shard
  ///
  ///   w_i = min over src j != i with a finite next-event time t_j of
  ///         pair_window_end(t_j, j, i)
  ///
  /// — still conservative (any post from j at u >= t_j arrives at
  /// >= u + L_eff[j][i] >= w_i; a drained shard executes nothing this
  /// round, so it posts nothing and contributes no bound), still a pure
  /// function of the shard time image + plan + matrix, so byte-identical
  /// determinism across worker-thread counts is untouched.  Composition
  /// with an installed lookahead plan is by min: the effective src→dst
  /// bound at time u is min(matrix[src][dst], L_plan(u)) — always safe,
  /// because the plan's epoch scalar is itself a valid global bound even
  /// where churn has invalidated the static matrix.  Without a plan the
  /// matrix entry applies alone (that is the whole widening).
  ///
  /// Off-diagonal entries must be > 0 (finite or +infinity); diagonal
  /// entries are ignored.  An empty matrix restores the uniform scalar.
  /// reset() with an explicit (positive) lookahead — the rebind seam —
  /// clears the matrix along with the plan: both were derived for the
  /// previous routing, and the explicit scalar rebuilds the uniform
  /// bound (equivalent to a uniform matrix of that scalar).  A
  /// keep-current reset(0) retains it.
  void set_lookahead_matrix(std::vector<Time> matrix);
  const std::vector<Time>& lookahead_matrix() const {
    return policy_.matrix();
  }

  // -- telemetry ----------------------------------------------------------
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t events_executed() const;
  std::uint64_t messages_posted() const;
  std::uint64_t messages_spilled() const;

 private:
  void worker(std::size_t t, Time until);
  void worker_rounds(std::size_t t, Time until);
  void record_error() noexcept;
  void apply_shard_floor();

  /// One cache line per shard: its next-event time key, published by the
  /// owning worker during the drain phase and read by every worker at the
  /// window decision.  A SINGLE buffer suffices (unlike min_key_'s round
  /// parity): round r's writes and reads are separated by the drain
  /// barrier, and the next writes (round r+1's drain) sit behind the
  /// process barrier — two barrier edges bracket every read.
  struct alignas(64) PaddedKey {
    std::atomic<std::uint64_t> key{0};
  };

  ShardedConfig config_;
  /// The window math (scalar + epoch plan + closed pair matrix) — shared
  /// with the process backend, so both derive identical windows from the
  /// same published time keys.  Immutable while run() is in flight;
  /// workers only read it.
  WindowPolicy policy_;
  std::size_t threads_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<PaddedKey[]> shard_key_;  ///< per-shard time image
  ShardMsgHandler handler_;
  ShardBatchMsgHandler batch_handler_;
  util::SpinBarrier barrier_;

  /// Double-buffered min-reduction over next-event time keys, indexed by
  /// round parity: while round r reduces into slot r&1, every thread
  /// resets slot (r+1)&1 — reads of a slot are separated from the next
  /// writes by two barrier edges.  A worker that caught a model exception
  /// votes the reserved kAbortKey (below every real key) instead, so the
  /// abort decision is read at the same aligned point as the window.
  alignas(64) std::atomic<std::uint64_t> min_key_[2];
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  std::uint64_t rounds_ = 0;
  std::uint64_t events_before_run_ = 0;
};

}  // namespace emcast::sim
