#pragma once
// Mid-run fault injection: a deterministic, pre-resolved timeline of fault
// events scheduled through the ordinary event machinery of EVERY kernel an
// Engine owns.
//
// The subsystem is deliberately model-agnostic (sim/ must not depend on
// overlay/ or experiments/): a FaultEvent is an opaque (time, kind,
// subject) triple, and the model supplies one FaultFn that interprets it.
// What makes this sharding-safe is the *replication* discipline the
// experiments build on top:
//
//   - the schedule is resolved OFFLINE, before the run, so every kernel
//     holds the identical timeline (no mid-run randomness, no cross-shard
//     agreement protocol);
//   - arm() schedules the timeline on every kernel of the engine as a
//     self-chaining event (each firing schedules the next), so each shard
//     replays the same faults at the same simulated times on its own
//     clock;
//   - the handler mutates only per-kernel replica state (indexed by
//     ctx.shard_index()), which therefore stays bit-identical across
//     shards — the property the churn differential suite pins.
//
// Zero steady-state allocation: the schedule and handler are set up once
// (setup-time allocation); arm() and the chain events use the kernel's
// compact event slots ([injector, ctx, index] is 32 bytes, under the
// 56-byte CompactFn bound), so re-arming a warm engine after reset()
// allocates nothing.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/context.hpp"
#include "util/types.hpp"

namespace emcast::sim {

/// One scheduled fault.  `kind` and `subject` are model-defined opcodes —
/// the experiments layer maps its churn actions (crash, splice, leave,
/// join) onto them; the sim layer never interprets them.
struct FaultEvent {
  Time at = 0;
  std::uint32_t kind = 0;
  std::int32_t subject = -1;

  friend bool operator==(const FaultEvent& a, const FaultEvent& b) {
    return a.at == b.at && a.kind == b.kind && a.subject == b.subject;
  }
};

/// Invoked once per fault event per kernel, at the event's simulated time,
/// on the kernel's own timeline (ctx identifies the kernel).
using FaultFn = std::function<void(SimContext, const FaultEvent&)>;

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install the fault timeline.  Events are stable-sorted by time;
  /// every time must be finite and >= 0 (arm() schedules from t = 0).
  void set_schedule(std::vector<FaultEvent> schedule);

  /// Install the model's interpreter.  May capture heap state; called
  /// once per event per kernel.
  void set_handler(FaultFn handler) { handler_ = std::move(handler); }

  const std::vector<FaultEvent>& schedule() const { return schedule_; }

  /// Schedule the timeline's first event on every kernel of `engine`;
  /// each firing chains the next.  Call after the engine (re)set and
  /// before run(); re-arming a warm engine allocates nothing.  The
  /// injector must outlive the run.
  void arm(Engine& engine);

 private:
  void fire(SimContext ctx, std::size_t index);

  std::vector<FaultEvent> schedule_;
  FaultFn handler_;
};

}  // namespace emcast::sim
