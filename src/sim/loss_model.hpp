#pragma once
// Packet-loss models for failure injection.  The paper's future work
// (Section VII) names error control and packet loss as the next QoS
// dimensions; these models let the experiments measure how the regulated
// schemes degrade when the underlay drops packets.
//
// Two classic models:
//   BernoulliLoss      — i.i.d. drops with a fixed probability.
//   GilbertElliottLoss — two-state Markov bursty loss (good/bad channel),
//                        parameterised by the stationary loss rate and the
//                        mean burst length.

#include <cstdint>

#include "util/rng.hpp"

namespace emcast::sim {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// True if the next packet should be dropped.
  virtual bool drop() = 0;
};

class NoLoss final : public LossModel {
 public:
  bool drop() override { return false; }
};

class BernoulliLoss final : public LossModel {
 public:
  BernoulliLoss(double probability, std::uint64_t seed);
  bool drop() override;
  double probability() const { return probability_; }

 private:
  double probability_;
  util::Rng rng_;
};

class GilbertElliottLoss final : public LossModel {
 public:
  /// `loss_rate` is the long-run fraction of packets dropped; `mean_burst`
  /// the expected number of consecutive drops once the channel turns bad.
  /// Good-state transmissions are loss-free; bad-state ones all drop
  /// (the classic simplified Gilbert model).
  GilbertElliottLoss(double loss_rate, double mean_burst, std::uint64_t seed);
  bool drop() override;

  bool in_bad_state() const { return bad_; }
  double p_good_to_bad() const { return p_gb_; }
  double p_bad_to_good() const { return p_bg_; }

 private:
  double p_gb_;  ///< P(good -> bad)
  double p_bg_;  ///< P(bad -> good)
  bool bad_ = false;
  util::Rng rng_;
};

}  // namespace emcast::sim
