#include "sim/window_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emcast::sim {

void WindowPolicy::init(std::size_t shards, Time lookahead) {
  shards_ = std::max<std::size_t>(1, shards);
  set_scalar(lookahead);
}

void WindowPolicy::set_scalar(Time lookahead) {
  if (!(lookahead > 0) || !std::isfinite(lookahead)) {
    throw std::invalid_argument("WindowPolicy: lookahead must be > 0");
  }
  scalar_ = lookahead;
}

void WindowPolicy::set_plan(std::vector<LookaheadEpoch> plan) {
  for (std::size_t e = 0; e < plan.size(); ++e) {
    if (!(plan[e].lookahead > 0) || !std::isfinite(plan[e].lookahead)) {
      throw std::invalid_argument(
          "WindowPolicy::set_plan: lookahead must be > 0");
    }
    if (!std::isfinite(plan[e].from) ||
        (e > 0 && !(plan[e].from > plan[e - 1].from))) {
      throw std::invalid_argument(
          "WindowPolicy::set_plan: epochs must be sorted by strictly "
          "increasing from");
    }
  }
  plan_ = std::move(plan);
}

void WindowPolicy::set_matrix(std::vector<Time> matrix) {
  const std::size_t n = shards_;
  if (!matrix.empty() && matrix.size() != n * n) {
    throw std::invalid_argument(
        "WindowPolicy::set_matrix: need shards^2 entries");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || matrix.empty()) continue;
      const Time v = matrix[i * n + j];
      // Negated > so NaN is rejected too; +infinity (edge-free pair) is
      // explicitly allowed, unlike the scalar lookahead.
      if (!(v > 0)) {
        throw std::invalid_argument(
            "WindowPolicy::set_matrix: pair lookahead must be > 0");
      }
    }
  }
  if (!matrix.empty()) {
    // Min-plus transitive closure (Floyd-Warshall over the shard graph),
    // INCLUDING the diagonal — see the header comment for why unclosed
    // entries are unsafe.  Entries only shrink toward the true
    // earliest-influence bound, and closing an already-closed matrix is a
    // no-op.  (Diagonal inputs are ignored: the cycle bound is rebuilt
    // from the off-diagonal entries.)
    for (std::size_t i = 0; i < n; ++i) matrix[i * n + i] = kTimeInfinity;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (i == k) continue;
        const Time ik = matrix[i * n + k];
        if (!std::isfinite(ik)) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (j == k) continue;
          const Time via = ik + matrix[k * n + j];
          Time& d = matrix[i * n + j];
          if (via < d) d = via;
        }
      }
    }
  }
  matrix_ = std::move(matrix);
}

void WindowPolicy::clear_plan_and_matrix() {
  plan_.clear();
  matrix_.clear();
}

Time WindowPolicy::window_end(Time tmin) const {
  Time w = tmin + scalar_;
  if (!plan_.empty()) {
    // Epoch in force at tmin: the last entry with from <= tmin (the
    // construction lookahead covers times before the first epoch).
    auto it = std::upper_bound(
        plan_.begin(), plan_.end(), tmin,
        [](Time t, const LookaheadEpoch& e) { return t < e.from; });
    if (it != plan_.begin()) w = tmin + std::prev(it)->lookahead;
    // Remap at the window boundary: an epoch starting inside the window
    // caps it at b + L(b), so no post made under the old regime can land
    // inside a window that already runs under the new one.
    for (; it != plan_.end() && it->from < w; ++it) {
      w = std::min(w, it->from + it->lookahead);
    }
  }
  return w;
}

Time WindowPolicy::pair_window_end(Time t, std::size_t src,
                                   std::size_t dst) const {
  const Time pair = matrix_[src * shards_ + dst];
  if (plan_.empty()) {
    // The pair bound applies alone; an edge-free pair (+inf) yields an
    // infinite term, i.e. no constraint from this source.
    return t + pair;
  }
  // Plan installed: the effective src->dst bound at any time u is
  // min(pair, L_plan(u)) — the epoch scalar is a valid global bound even
  // where churn invalidated the static matrix, so the min composition
  // stays conservative.  Same epoch-boundary clamping as window_end.
  Time w = t + std::min(pair, scalar_);
  auto it = std::upper_bound(
      plan_.begin(), plan_.end(), t,
      [](Time u, const LookaheadEpoch& e) { return u < e.from; });
  if (it != plan_.begin()) w = t + std::min(pair, std::prev(it)->lookahead);
  for (; it != plan_.end() && it->from < w; ++it) {
    w = std::min(w, it->from + std::min(pair, it->lookahead));
  }
  return w;
}

Time WindowPolicy::floor() const {
  Time floor = scalar_;
  for (const LookaheadEpoch& e : plan_) floor = std::min(floor, e.lookahead);
  return floor;
}

Time WindowPolicy::pair_floor(std::size_t src, std::size_t dst) const {
  const Time pair = matrix_[src * shards_ + dst];
  return plan_.empty() ? pair : std::min(pair, floor());
}

}  // namespace emcast::sim
