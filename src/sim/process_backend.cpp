#include "sim/process_backend.hpp"

#include <sched.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/wire_codec.hpp"

namespace emcast::sim {

struct ProcessSimulator::WorkerProc {
  pid_t pid = -1;
  std::unique_ptr<Channel> ch;
  std::size_t begin = 0;
  std::size_t end = 0;
  bool reaped = false;
  std::string death;  ///< cached waitpid diagnostic once reaped
};

namespace {

std::string wait_status_string(std::size_t w, int status) {
  if (WIFSIGNALED(status)) {
    return "worker " + std::to_string(w) + " killed by signal " +
           std::to_string(WTERMSIG(status));
  }
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return "worker " + std::to_string(w) + " exited with status " +
         std::to_string(code) + " mid-protocol";
}

}  // namespace

void ProcessSimulator::reap_all(std::vector<WorkerProc>& workers,
                                bool kill_first, double timeout) {
  if (kill_first) {
    for (auto& wp : workers) {
      if (!wp.reaped && wp.pid > 0) ::kill(wp.pid, SIGKILL);
    }
  }
  for (std::size_t w = 0; w < workers.size(); ++w) {
    auto& wp = workers[w];
    if (wp.reaped || wp.pid <= 0) continue;
    const double start = monotonic_seconds();
    bool killed = kill_first;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(wp.pid, &status, killed ? 0 : WNOHANG);
      if (r == wp.pid) {
        wp.reaped = true;
        wp.death = wait_status_string(w, status);
        break;
      }
      if (monotonic_seconds() - start > timeout) {
        ::kill(wp.pid, SIGKILL);
        killed = true;
        continue;
      }
      sched_yield();
    }
  }
}

ProcessSimulator::ProcessSimulator(const ProcessConfig& config)
    : config_(config) {
  if (!(config.lookahead > 0) || !std::isfinite(config.lookahead)) {
    throw std::invalid_argument("ProcessSimulator: lookahead must be > 0");
  }
  if (!(config.timeout_seconds > 0)) {
    throw std::invalid_argument("ProcessSimulator: timeout must be > 0");
  }
  const std::size_t n = std::max<std::size_t>(1, config.shards);
  processes_ = [&] {
    std::size_t p = config.processes != 0
                        ? config.processes
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency());
    return std::min(n, std::max<std::size_t>(1, p));
  }();
  policy_.init(n, config.lookahead);
  // Shard + mailbox wiring is IDENTICAL to ShardedSimulator's: the model
  // is built against the same Shard objects, and worker processes inherit
  // them (and their mailbox graph) whole through fork's copy-on-write.
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.emplace_back(std::unique_ptr<Shard>(new Shard()));
    Shard& s = *shards_.back();
    s.index_ = i;
    s.lookahead_ = config.lookahead;
    s.incoming_.resize(n);
    s.drain_buf_.reserve(64);
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      auto box = std::make_unique<ShardMailbox>();
      box->init(static_cast<std::uint32_t>(i), config.mailbox_capacity);
      shards_[j]->incoming_[i] = std::move(box);
    }
    shards_[j]->outgoing_.resize(n, nullptr);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      shards_[i]->outgoing_[j] = shards_[j]->incoming_[i].get();
    }
  }
  if (!config.lookahead_matrix.empty()) {
    set_lookahead_matrix(config.lookahead_matrix);
  }
}

ProcessSimulator::~ProcessSimulator() = default;

std::size_t ProcessSimulator::owner_of(std::size_t shard) const {
  // Inverse of the contiguous block map; processes_ is small, shard
  // lookups are per-handoff on the hub, so the closed form matters
  // little — but keep it O(1) anyway.
  const std::size_t n = shards_.size();
  std::size_t w = shard * processes_ / n;
  while (shard_begin(w) > shard) --w;
  while (shard_end(w) <= shard) ++w;
  return w;
}

void ProcessSimulator::set_message_handler(ShardMsgHandler handler) {
  handler_ = std::move(handler);
  batch_handler_ = nullptr;
  for (auto& s : shards_) {
    s->handler_ = &handler_;
    s->batch_handler_ = nullptr;
  }
}

void ProcessSimulator::set_batch_message_handler(ShardBatchMsgHandler handler) {
  batch_handler_ = std::move(handler);
  handler_ = nullptr;
  for (auto& s : shards_) {
    s->handler_ = nullptr;
    s->batch_handler_ = &batch_handler_;
  }
}

void ProcessSimulator::set_result_hooks(ShardResultWriter writer,
                                        ShardResultReader reader) {
  result_writer_ = std::move(writer);
  result_reader_ = std::move(reader);
}

void ProcessSimulator::reset(Time lookahead) {
  Time next_lookahead = config_.lookahead;
  if (!(lookahead <= 0.0)) {
    if (!std::isfinite(lookahead)) {
      throw std::invalid_argument(
          "ProcessSimulator::reset: lookahead not finite");
    }
    next_lookahead = lookahead;
  }
  for (auto& s : shards_) s->reset(next_lookahead);
  config_.lookahead = next_lookahead;
  policy_.set_scalar(next_lookahead);
  if (!(lookahead <= 0.0)) {
    policy_.clear_plan_and_matrix();
  } else if (!policy_.plan().empty() || !policy_.matrix().empty()) {
    apply_shard_floor();
  }
  rounds_ = 0;
  events_agg_ = 0;
  posted_agg_ = 0;
  spilled_agg_ = 0;
}

void ProcessSimulator::set_lookahead_plan(std::vector<LookaheadEpoch> plan) {
  policy_.set_plan(std::move(plan));
  apply_shard_floor();
}

void ProcessSimulator::set_lookahead_matrix(std::vector<Time> matrix) {
  policy_.set_matrix(std::move(matrix));
  apply_shard_floor();
}

void ProcessSimulator::apply_shard_floor() {
  // Same floors as ShardedSimulator::apply_shard_floor — the post asserts
  // must reject exactly what the (shared) window scheduler relies on.
  const Time floor = policy_.floor();
  const std::size_t n = shards_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Shard& s = *shards_[i];
    s.lookahead_ = floor;
    if (policy_.matrix().empty()) {
      s.post_floor_.clear();
      continue;
    }
    s.post_floor_.assign(n, floor);
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (dst == i) continue;
      s.post_floor_[dst] = policy_.pair_floor(i, dst);
    }
  }
}

std::uint64_t ProcessSimulator::run(Time until) {
  // Channels first, THEN fork: the shm mappings must predate the children
  // to be shared, and socketpairs must exist for both sides to inherit.
  std::vector<ChannelPair> pairs;
  pairs.reserve(processes_);
  for (std::size_t w = 0; w < processes_; ++w) {
    pairs.push_back(config_.transport == TransportKind::Shm
                        ? make_shm_pair()
                        : make_socket_pair());
  }

  std::vector<WorkerProc> workers(processes_);
  for (std::size_t w = 0; w < processes_; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const std::string err = std::strerror(errno);
      reap_all(workers, /*kill_first=*/true, config_.timeout_seconds);
      throw std::runtime_error("process backend: fork failed: " + err);
    }
    if (pid == 0) {
      // Child: keep only this worker's end; dropping the rest closes the
      // inherited hub-side fds (socket EOF semantics need that) and
      // unmaps the other pairs' rings in this process.  A dying hub
      // takes the worker with it (PDEATHSIG) even if the worker is
      // compute-bound and not watching the channel.
      std::unique_ptr<Channel> mine = std::move(pairs[w].worker_end);
      pairs.clear();
      workers.clear();
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
      worker_main(w, *mine, until);  // _exits, never returns
    }
    workers[w].pid = pid;
    workers[w].begin = shard_begin(w);
    workers[w].end = shard_end(w);
  }
  for (std::size_t w = 0; w < processes_; ++w) {
    workers[w].ch = std::move(pairs[w].hub_end);
  }
  pairs.clear();  // parent drops the worker ends
  for (std::size_t w = 0; w < processes_; ++w) {
    WorkerProc* wp = &workers[w];
    wp->ch->set_timeout(config_.timeout_seconds);
    wp->ch->set_peer_probe([wp, w]() -> std::string {
      if (wp->reaped) return wp->death;
      int status = 0;
      if (::waitpid(wp->pid, &status, WNOHANG) != wp->pid) return "";
      wp->reaped = true;
      wp->death = wait_status_string(w, status);
      return wp->death;
    });
  }

  try {
    const std::uint64_t events = hub_main(workers, until);
    events_agg_ += events;
    return events;
  } catch (const TransportError& e) {
    // A dead or wedged worker: the run is unrecoverable, but the FAILURE
    // must be clean — kill the survivors, reap everything, surface the
    // channel's diagnostic.  No hang, no zombie, no leaked fd.
    reap_all(workers, /*kill_first=*/true, config_.timeout_seconds);
    throw std::runtime_error(std::string("process backend: ") + e.what());
  } catch (const wire::WireError& e) {
    reap_all(workers, /*kill_first=*/true, config_.timeout_seconds);
    throw std::runtime_error(std::string("process backend: ") + e.what());
  } catch (...) {
    reap_all(workers, /*kill_first=*/true, config_.timeout_seconds);
    throw;
  }
}

std::uint64_t ProcessSimulator::hub_main(std::vector<WorkerProc>& workers,
                                         Time until) {
  const std::size_t n = shards_.size();
  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> frame;
  std::string model_error;

  // Receive the next frame from `wp`, absorbing Error frames (a worker
  // reports its model exception out-of-band, then keeps the protocol
  // moving with abort votes; only the FIRST message is kept).
  auto recv_typed = [&](WorkerProc& wp) -> wire::FrameType {
    for (;;) {
      wp.ch->recv_frame(frame);
      const wire::FrameType t = wire::peek_type(frame.data(), frame.size());
      if (t != wire::FrameType::kError) return t;
      wire::ErrorFrame e = wire::decode_error(frame.data(), frame.size());
      if (model_error.empty()) model_error = std::move(e.message);
    }
  };

  // ---- handshake: one Hello per worker, blocks verified.
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (recv_typed(workers[w]) != wire::FrameType::kHello) {
      throw wire::WireError("wire: expected hello from worker " +
                            std::to_string(w));
    }
    const wire::HelloFrame h = wire::decode_hello(frame.data(), frame.size());
    if (h.worker != w || h.shard_begin != workers[w].begin ||
        h.shard_end != workers[w].end) {
      throw wire::WireError("wire: hello does not match worker " +
                            std::to_string(w) + "'s shard block");
    }
  }

  std::vector<std::uint64_t> keys(n, kInfTimeKey);
  // Relay backlog, one queue per destination worker: a worker still in
  // its egress phase is not reading its channel (it is blocked sending
  // handoffs to us), so relaying to it immediately can deadlock once the
  // rings fill in both directions — its egress and the relayed traffic
  // each may exceed the 256-KB ring.  Frames for a worker are held here
  // until its RoundDone arrives; from then on it sits in its ingest recv
  // loop and is guaranteed to drain whatever the hub sends.
  std::vector<bool> ingesting(workers.size(), false);
  std::vector<std::vector<std::vector<std::uint8_t>>> backlog(workers.size());
  for (std::uint64_t round = 0;; ++round) {
    // ---- collect the key image (the distributed min-reduction).
    for (std::size_t w = 0; w < workers.size(); ++w) {
      WorkerProc& wp = workers[w];
      if (recv_typed(wp) != wire::FrameType::kKeys) {
        throw wire::WireError("wire: expected keys from worker " +
                              std::to_string(w));
      }
      const wire::KeysFrame kf = wire::decode_keys(frame.data(), frame.size());
      if (kf.round != round || kf.shard_begin != wp.begin ||
          kf.keys.size() != wp.end - wp.begin) {
        throw wire::WireError("wire: keys frame out of step (worker " +
                              std::to_string(w) + ")");
      }
      std::copy(kf.keys.begin(), kf.keys.end(), keys.begin() + wp.begin);
    }
    const std::uint64_t kmin = *std::min_element(keys.begin(), keys.end());

    // ---- verdict, broadcast to every worker at once.
    wire::WindowFrame win;
    win.round = round;
    if (kmin == kAbortTimeKey) {
      win.verdict = wire::WindowVerdict::kAbort;
    } else if (kmin == kInfTimeKey || key_time(kmin) > until) {
      win.verdict = wire::WindowVerdict::kDone;
    } else {
      win.verdict = wire::WindowVerdict::kRun;
      win.keys = keys;
    }
    buf.clear();
    wire::encode(buf, win);
    for (auto& wp : workers) wp.ch->send_frame(buf);

    if (win.verdict == wire::WindowVerdict::kAbort) {
      // Workers _exit on the abort verdict; reap, then surface the model
      // error.  The original exception TYPE died with the worker — the
      // message is what crosses the boundary (see the class comment).
      reap_all(workers, /*kill_first=*/false, config_.timeout_seconds);
      throw std::runtime_error(
          "process backend: " +
          (model_error.empty() ? std::string("worker voted abort")
                               : model_error));
    }
    if (win.verdict == wire::WindowVerdict::kDone) break;

    // ---- route handoffs until every worker's RoundDone is in.  Raw
    // frame bytes are relayed untouched — the hub never decodes a batch.
    // Per-destination delivery order matches an immediate relay (source
    // workers read in index order, frames in arrival order within each),
    // so the buffering is invisible to the protocol.
    std::fill(ingesting.begin(), ingesting.end(), false);
    for (std::size_t w = 0; w < workers.size(); ++w) {
      for (;;) {
        const wire::FrameType t = recv_typed(workers[w]);
        if (t == wire::FrameType::kRoundDone) {
          const wire::RoundDoneFrame rd =
              wire::decode_round_done(frame.data(), frame.size());
          if (rd.round != round) {
            throw wire::WireError("wire: round-done out of step");
          }
          break;
        }
        if (t != wire::FrameType::kHandoff) {
          throw wire::WireError("wire: expected handoff or round-done");
        }
        const std::uint32_t dest =
            wire::decode_handoff_dest(frame.data(), frame.size());
        if (dest >= n) {
          throw wire::WireError("wire: handoff to nonexistent shard");
        }
        const std::size_t owner = owner_of(dest);
        if (ingesting[owner]) {
          workers[owner].ch->send_frame(frame);
        } else {
          backlog[owner].push_back(frame);
        }
      }
      ingesting[w] = true;
      for (const auto& held : backlog[w]) workers[w].ch->send_frame(held);
      backlog[w].clear();
    }
    buf.clear();
    wire::encode(buf, wire::DrainGoFrame{round});
    for (auto& wp : workers) wp.ch->send_frame(buf);
    ++rounds_;
  }

  // ---- done: results + telemetry, in worker order; blobs replayed in
  // shard order afterwards so the hub-side merge is deterministic.
  std::vector<std::vector<std::uint8_t>> blobs(n);
  std::vector<bool> have_blob(n, false);
  std::uint64_t events = 0;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    for (;;) {
      const wire::FrameType t = recv_typed(workers[w]);
      if (t == wire::FrameType::kResult) {
        wire::ResultFrame rf = wire::decode_result(frame.data(), frame.size());
        if (rf.shard >= n) {
          throw wire::WireError("wire: result for nonexistent shard");
        }
        blobs[rf.shard] = std::move(rf.blob);
        have_blob[rf.shard] = true;
        continue;
      }
      if (t == wire::FrameType::kBye) {
        const wire::ByeFrame bye =
            wire::decode_bye(frame.data(), frame.size());
        events += bye.events_executed;
        posted_agg_ += bye.messages_posted;
        spilled_agg_ += bye.messages_spilled;
        break;
      }
      throw wire::WireError("wire: expected result or bye");
    }
  }
  reap_all(workers, /*kill_first=*/false, config_.timeout_seconds);
  if (result_reader_) {
    for (std::size_t s = 0; s < n; ++s) {
      if (have_blob[s]) result_reader_(s, blobs[s].data(), blobs[s].size());
    }
  }
  return events;
}

void ProcessSimulator::worker_main(std::size_t w, Channel& ch, Time until) {
  const pid_t hub_pid = ::getppid();
  ch.set_timeout(config_.timeout_seconds);
  ch.set_peer_probe([hub_pid]() -> std::string {
    return ::getppid() == hub_pid ? std::string() : "hub process died";
  });

  const std::size_t n = shards_.size();
  const std::size_t begin = shard_begin(w);
  const std::size_t end = shard_end(w);
  const Time horizon_bound = std::nextafter(until, kTimeInfinity);

  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> frame;
  bool failed = false;
  auto send_error = [&](const char* what) {
    buf.clear();
    wire::encode(buf, wire::ErrorFrame{std::string(what)});
    ch.send_frame(buf);
    failed = true;
  };

  try {
    buf.clear();
    wire::encode(buf, wire::HelloFrame{static_cast<std::uint32_t>(w),
                                       static_cast<std::uint32_t>(begin),
                                       static_cast<std::uint32_t>(end)});
    ch.send_frame(buf);

    wire::KeysFrame kf;
    kf.shard_begin = static_cast<std::uint32_t>(begin);
    kf.keys.resize(end - begin);
    std::vector<CrossShardMsg> egress;

    for (std::uint64_t round = 0;; ++round) {
      // ---- drain phase (exactly worker_rounds': merge + publish keys;
      // a failed worker keeps the protocol moving with abort votes).
      if (!failed) {
        try {
          for (std::size_t s = begin; s < end; ++s) {
            shards_[s]->drain_and_schedule();
            kf.keys[s - begin] = time_key(shards_[s]->sim_.next_event_time());
          }
        } catch (const std::exception& e) {
          send_error(e.what());
        } catch (...) {
          send_error("unknown model exception");
        }
      }
      if (failed) {
        std::fill(kf.keys.begin(), kf.keys.end(), kAbortTimeKey);
      }
      kf.round = round;
      buf.clear();
      wire::encode(buf, kf);
      ch.send_frame(buf);

      ch.recv_frame(frame);
      const wire::WindowFrame win =
          wire::decode_window(frame.data(), frame.size());
      if (win.verdict == wire::WindowVerdict::kAbort) _exit(2);
      if (win.verdict == wire::WindowVerdict::kDone) break;
      if (win.keys.size() != n) {
        throw wire::WireError("wire: window key image size mismatch");
      }

      // ---- process phase: identical window math to worker_rounds, with
      // the broadcast key image standing in for the shared atomics.
      const std::uint64_t kmin =
          *std::min_element(win.keys.begin(), win.keys.end());
      const Time tmin = key_time(kmin);
      const Time w_global = policy_.window_end(tmin);
      if (!failed) {
        try {
          for (std::size_t s = begin; s < end; ++s) {
            Time wend;
            if (policy_.matrix().empty()) {
              wend = w_global;
            } else {
              wend = kTimeInfinity;
              for (std::size_t j = 0; j < n; ++j) {
                const std::uint64_t kj = win.keys[j];
                if (kj == kInfTimeKey) continue;
                wend =
                    std::min(wend, policy_.pair_window_end(key_time(kj), j, s));
              }
            }
            if (!(wend > tmin)) wend = std::nextafter(tmin, kTimeInfinity);
            wend = std::min(wend, horizon_bound);
            shards_[s]->sim_.run_before(wend);
          }
        } catch (const std::exception& e) {
          send_error(e.what());
        } catch (...) {
          send_error("unknown model exception");
        }
      }

      // ---- egress: cross-process posts landed in THIS process's
      // copy-on-write copies of the remote destinations' mailboxes; ship
      // each non-empty (my source -> remote dest) pair as one Handoff.
      // Same-process destinations keep the in-process path untouched.
      for (std::size_t d = 0; d < n; ++d) {
        if (d >= begin && d < end) continue;
        for (std::size_t s = begin; s < end; ++s) {
          if (s == d) continue;
          egress.clear();
          shards_[d]->incoming_[s]->drain_into(egress);
          if (egress.empty()) continue;
          wire::HandoffFrame hf;
          hf.dest_shard = static_cast<std::uint32_t>(d);
          hf.msgs = std::move(egress);
          buf.clear();
          wire::encode(buf, hf);
          ch.send_frame(buf);
          egress = std::move(hf.msgs);  // keep the arena warm
        }
      }
      buf.clear();
      wire::encode(buf, wire::RoundDoneFrame{round});
      ch.send_frame(buf);

      // ---- ingest forwarded handoffs until the barrier (DrainGo).
      for (;;) {
        ch.recv_frame(frame);
        const wire::FrameType t = wire::peek_type(frame.data(), frame.size());
        if (t == wire::FrameType::kDrainGo) break;
        if (t != wire::FrameType::kHandoff) {
          throw wire::WireError("wire: expected handoff or drain-go");
        }
        const wire::HandoffFrame hf =
            wire::decode_handoff(frame.data(), frame.size());
        if (hf.dest_shard < begin || hf.dest_shard >= end) {
          throw wire::WireError("wire: handoff routed to the wrong worker");
        }
        Shard& dest = *shards_[hf.dest_shard];
        for (const CrossShardMsg& m : hf.msgs) {
          if (m.source_shard >= n || m.source_shard == hf.dest_shard) {
            throw wire::WireError("wire: handoff from an impossible source");
          }
          dest.incoming_[m.source_shard]->inject(m);
        }
      }
    }

    // ---- epilogue: advance drained shards to the horizon (no events can
    // execute — cannot throw), marshal results, report telemetry, leave.
    for (std::size_t s = begin; s < end; ++s) shards_[s]->sim_.run(until);
    if (result_writer_ && !failed) {
      std::vector<std::uint8_t> blob;
      for (std::size_t s = begin; s < end; ++s) {
        blob.clear();
        result_writer_(s, blob);
        wire::ResultFrame rf;
        rf.shard = static_cast<std::uint32_t>(s);
        rf.blob = std::move(blob);
        buf.clear();
        wire::encode(buf, rf);
        ch.send_frame(buf);
        blob = std::move(rf.blob);
      }
    }
    std::uint64_t events = 0, posted = 0, spilled = 0;
    for (std::size_t s = begin; s < end; ++s) {
      events += shards_[s]->events_executed();
    }
    // Posted/spilled counters live in the PRODUCER's copy of each
    // mailbox: sum every pair whose source this worker owns (producer
    // ownership partitions the pairs, so worker sums never overlap).
    for (std::size_t d = 0; d < n; ++d) {
      for (std::size_t s = begin; s < end; ++s) {
        if (s == d) continue;
        posted += shards_[d]->incoming_[s]->posted();
        spilled += shards_[d]->incoming_[s]->spilled();
      }
    }
    buf.clear();
    wire::encode(buf, wire::ByeFrame{events, posted, spilled});
    ch.send_frame(buf);
    _exit(0);
  } catch (...) {
    // Transport/protocol failure (hub died, timeout, corrupt frame):
    // nobody left to report to — exit with a distinct status for the
    // hub's waitpid diagnostic.  _exit, never return: this process must
    // not unwind into the parent's code or static destructors.
    _exit(3);
  }
}

}  // namespace emcast::sim
