#pragma once
// The window math of the conservative-rounds protocol, extracted so every
// backend that runs rounds — the in-process ShardedSimulator and the
// process-per-shard ProcessSimulator — derives windows from the SAME pure
// functions of (tmin, scalar lookahead, epoch plan, pair matrix).  That
// identity is what keeps the two backends byte-identical: given the same
// published per-shard time keys, both compute the same per-shard window
// end, so every kernel executes the same events in the same rounds.
//
// The policy is plain data + const queries; it owns no threads and does no
// synchronisation.  Validation and the min-plus transitive closure of the
// pair matrix (Floyd-Warshall including the diagonal — see set_matrix)
// happen at install time, once, so the per-round queries are read-only.

#include <cstdint>
#include <vector>

#include "sim/pending_entry.hpp"
#include "util/types.hpp"

namespace emcast::sim {

/// One epoch of a piecewise-constant lookahead plan (see
/// WindowPolicy::set_plan / ShardedSimulator::set_lookahead_plan): from
/// simulated time `from` onwards — until the next epoch — every
/// cross-shard interaction takes at least `lookahead` of simulated time.
struct LookaheadEpoch {
  Time from = 0;
  Time lookahead = 0;

  friend bool operator==(const LookaheadEpoch& a, const LookaheadEpoch& b) {
    return a.from == b.from && a.lookahead == b.lookahead;
  }
};

/// All pending times are finite (push rejects non-finite), so the key of
/// +infinity is a safe "empty" sentinel for the min-reduction.
inline const std::uint64_t kInfTimeKey = time_key(kTimeInfinity);

/// Abort vote: rides the min-reduction below every real time key (keys of
/// finite times are never 0 — non-negative times set the sign bit and the
/// all-ones pattern that complements to 0 is a NaN, which push rejects).
/// A failed worker votes this instead of a next-event time; every
/// participant then observes the abort at the same aligned decision point
/// it reads the window from.
inline constexpr std::uint64_t kAbortTimeKey = 0;

class WindowPolicy {
 public:
  /// Shard count is fixed at init; the scalar must be finite and > 0
  /// (std::invalid_argument otherwise).
  void init(std::size_t shards, Time lookahead);

  std::size_t shards() const { return shards_; }
  Time scalar() const { return scalar_; }

  /// Replace the uniform scalar (finite, > 0) — the reset/rebind seam.
  void set_scalar(Time lookahead);

  /// Install a piecewise-constant lookahead plan.  Epochs must be sorted
  /// by strictly increasing finite `from`, every lookahead finite and
  /// > 0; an empty plan restores uniform behaviour.  Contract and the
  /// window-boundary remap rule: ShardedSimulator::set_lookahead_plan.
  void set_plan(std::vector<LookaheadEpoch> plan);
  const std::vector<LookaheadEpoch>& plan() const { return plan_; }

  /// Install a per-shard-pair lookahead matrix (shards² entries,
  /// flattened [src * shards + dst]; empty restores the uniform scalar).
  /// Off-diagonal entries must be > 0 (finite or +infinity = edge-free).
  /// The stored matrix is the min-plus TRANSITIVE CLOSURE of the input,
  /// including the diagonal (minimum feedback-cycle cost): the caller's
  /// entries bound DIRECT posts only, but a message can reach dst through
  /// an intermediary after just L[src][k] + L[k][dst], and a shard's own
  /// executions can reflect off a neighbour and return — windows derived
  /// from unclosed entries would let a shard run ahead of relayed or
  /// reflected traffic.  Full contract:
  /// ShardedSimulator::set_lookahead_matrix.
  void set_matrix(std::vector<Time> matrix);
  const std::vector<Time>& matrix() const { return matrix_; }

  /// The rebind seam: an explicit new scalar invalidates both the plan
  /// and the matrix (they were derived for the previous routing).
  void clear_plan_and_matrix();

  /// Uniform window end for the round anchored at tmin: tmin + L(tmin),
  /// clamped at every epoch boundary b inside the window to b + L(b)
  /// (the remap-at-window-boundary rule).
  Time window_end(Time tmin) const;

  /// Per-pair window bound from source shard `src` (next-event time t)
  /// into `dst`: t + the effective src→dst lookahead, with the same
  /// epoch-boundary clamping; the effective bound at time u is
  /// min(matrix[src][dst], L_plan(u)) while a plan is installed.  Only
  /// meaningful with a matrix installed.
  Time pair_window_end(Time t, std::size_t src, std::size_t dst) const;

  /// The weakest lookahead guarantee currently in force: the scalar
  /// floored by every plan epoch.  This is each shard's post-assert
  /// floor while no matrix narrows it per pair.
  Time floor() const;

  /// Per-destination post-assert floor for posts src→dst: exactly the
  /// bound the window scheduler derives (the CLOSED pair entry, floored
  /// by the plan when one is installed), so a model post that would
  /// narrow a committed window fails loudly.  Matrix must be installed.
  Time pair_floor(std::size_t src, std::size_t dst) const;

 private:
  std::size_t shards_ = 1;
  Time scalar_ = 0;
  std::vector<LookaheadEpoch> plan_;   ///< empty = uniform scalar
  std::vector<Time> matrix_;           ///< closed; empty = uniform scalar
};

}  // namespace emcast::sim
