#pragma once
// Versioned wire codec of the process-per-shard backend: the typed frames
// the hub and its worker processes exchange over a transport Channel
// (sim/transport.hpp) — cross-shard handoff batches, window-control
// min-reductions and verdicts, abort votes, result blobs.
//
// Layout of every frame (little-endian, explicit field-by-field encoding —
// never a struct memcpy, so the format is independent of padding and
// compiler layout):
//
//   [u32 magic 'EMWC'] [u16 version] [u16 type] [body ...]
//
// The transport carries each frame length-prefixed, so the codec sees a
// complete byte buffer and validates it: a wrong magic, an unknown
// version, a mismatched type or ANY truncation decodes to a thrown
// WireError — a recoverable rejection, never UB.  decode_* additionally
// rejects trailing garbage (the frame must consume exactly its bytes):
// a frame that parses but leaves residue is as corrupt as a short one.
//
// Versioning: kWireVersion stamps every frame.  A peer built from a
// different commit with a different layout fails the version check on the
// FIRST frame (the hello handshake), with a diagnostic naming both sides'
// versions — the cross-host failure mode this codec exists to catch.
//
// Determinism: doubles travel as IEEE-754 bit patterns (util/bytes.hpp),
// so a CrossShardMsg decodes to the identical bits that were encoded and
// the destination's (deliver_at, source shard, seq) drain sort agrees
// bit-for-bit with the in-process backend.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/mailbox.hpp"
#include "util/bytes.hpp"
#include "util/types.hpp"

namespace emcast::sim::wire {

inline constexpr std::uint32_t kMagic = 0x43574D45u;  // "EMWC" little-endian
inline constexpr std::uint16_t kWireVersion = 1;

/// Frame types.  Values are wire-stable: append, never renumber.
enum class FrameType : std::uint16_t {
  kHello = 1,      ///< worker -> hub: worker index + owned shard block
  kKeys = 2,       ///< worker -> hub: per-shard time keys (or abort votes)
  kWindow = 3,     ///< hub -> workers: verdict + full key vector
  kHandoff = 4,    ///< worker -> hub -> worker: cross-shard message batch
  kRoundDone = 5,  ///< worker -> hub: window executed, handoffs flushed
  kDrainGo = 6,    ///< hub -> workers: all handoffs delivered, drain next
  kResult = 7,     ///< worker -> hub: per-shard model result blob
  kBye = 8,        ///< worker -> hub: final telemetry, clean exit
  kError = 9,      ///< worker -> hub: model exception message
};

/// Thrown on any malformed frame (bad magic/version/type, truncation,
/// trailing bytes, counts that disagree with the payload size).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

struct HelloFrame {
  std::uint32_t worker = 0;
  std::uint32_t shard_begin = 0;
  std::uint32_t shard_end = 0;  ///< exclusive
};

struct KeysFrame {
  std::uint64_t round = 0;
  std::uint32_t shard_begin = 0;       ///< first shard of the block
  std::vector<std::uint64_t> keys;     ///< one per owned shard, in order
};

enum class WindowVerdict : std::uint8_t {
  kRun = 0,    ///< execute the window derived from `keys`
  kDone = 1,   ///< horizon reached / all drained: epilogue + results
  kAbort = 2,  ///< a worker voted abort: unwind without results
};

struct WindowFrame {
  std::uint64_t round = 0;
  WindowVerdict verdict = WindowVerdict::kRun;
  /// Full per-shard key image (shard_count entries) when verdict == kRun;
  /// empty otherwise.  Every worker derives its shards' windows from this
  /// vector through the shared WindowPolicy — identical math, identical
  /// windows.
  std::vector<std::uint64_t> keys;
};

struct HandoffFrame {
  std::uint32_t dest_shard = 0;
  std::vector<CrossShardMsg> msgs;
};

struct RoundDoneFrame {
  std::uint64_t round = 0;
};

struct DrainGoFrame {
  std::uint64_t round = 0;
};

struct ResultFrame {
  std::uint32_t shard = 0;
  std::vector<std::uint8_t> blob;  ///< model-defined (see ShardResultWriter)
};

struct ByeFrame {
  std::uint64_t events_executed = 0;
  std::uint64_t messages_posted = 0;
  std::uint64_t messages_spilled = 0;
};

struct ErrorFrame {
  std::string message;
};

// -- encode: append one complete frame (header + body) to `out` ----------
void encode(std::vector<std::uint8_t>& out, const HelloFrame& f);
void encode(std::vector<std::uint8_t>& out, const KeysFrame& f);
void encode(std::vector<std::uint8_t>& out, const WindowFrame& f);
void encode(std::vector<std::uint8_t>& out, const HandoffFrame& f);
void encode(std::vector<std::uint8_t>& out, const RoundDoneFrame& f);
void encode(std::vector<std::uint8_t>& out, const DrainGoFrame& f);
void encode(std::vector<std::uint8_t>& out, const ResultFrame& f);
void encode(std::vector<std::uint8_t>& out, const ByeFrame& f);
void encode(std::vector<std::uint8_t>& out, const ErrorFrame& f);

/// Validate the header and return the frame's type.  Throws WireError on
/// bad magic, unknown version (diagnostic names both versions) or a
/// header shorter than the fixed prefix.
FrameType peek_type(const std::uint8_t* data, std::size_t size);

// -- decode: parse a complete frame of the given kind ---------------------
// Each checks the header (magic, version, exact type), then the body, and
// rejects any leftover bytes.  All throw WireError; none read past `size`.
HelloFrame decode_hello(const std::uint8_t* data, std::size_t size);
KeysFrame decode_keys(const std::uint8_t* data, std::size_t size);
WindowFrame decode_window(const std::uint8_t* data, std::size_t size);
HandoffFrame decode_handoff(const std::uint8_t* data, std::size_t size);
/// Destination shard of a handoff frame WITHOUT decoding the batch — the
/// hub's forwarding fast path (it relays the raw bytes to the owner).
std::uint32_t decode_handoff_dest(const std::uint8_t* data, std::size_t size);
RoundDoneFrame decode_round_done(const std::uint8_t* data, std::size_t size);
DrainGoFrame decode_drain_go(const std::uint8_t* data, std::size_t size);
ResultFrame decode_result(const std::uint8_t* data, std::size_t size);
ByeFrame decode_bye(const std::uint8_t* data, std::size_t size);
ErrorFrame decode_error(const std::uint8_t* data, std::size_t size);

}  // namespace emcast::sim::wire
