#include "sim/fifo_queue.hpp"

#include <algorithm>
#include <cassert>

namespace emcast::sim {

void FifoQueue::push(Packet p, Time enqueued_at) {
  backlog_bits_ += p.size;
  peak_backlog_bits_ = std::max(peak_backlog_bits_, backlog_bits_);
  ++total_enqueued_;
  entries_.push_back(Entry{std::move(p), enqueued_at});
}

const Packet* FifoQueue::front() const {
  return entries_.empty() ? nullptr : &entries_.front().packet;
}

void FifoQueue::account_pop(const Packet& p) {
  backlog_bits_ -= p.size;
  if (backlog_bits_ < 0) backlog_bits_ = 0;  // guard float drift
}

Packet FifoQueue::pop() {
  assert(!entries_.empty());
  Packet p = std::move(entries_.front().packet);
  entries_.pop_front();
  account_pop(p);
  return p;
}

Packet FifoQueue::pop_newest() {
  assert(!entries_.empty());
  Packet p = std::move(entries_.back().packet);
  entries_.pop_back();
  account_pop(p);
  return p;
}

Packet FifoQueue::pop_newest_before(Time t) {
  assert(!entries_.empty());
  // Enqueue stamps are non-decreasing, so the newest qualifying entry is
  // the last one with stamp < t; entries at (or past) `t` cluster at the
  // back.  The common case (no tie in flight) is the back entry — a plain
  // pop_back; only a tie walks inward and pays an erase.
  if (entries_.back().enqueued_at < t) return pop_newest();
  for (auto it = std::prev(entries_.end()); it != entries_.begin();) {
    --it;
    if (it->enqueued_at < t) {
      Packet p = std::move(it->packet);
      entries_.erase(it);
      account_pop(p);
      return p;
    }
  }
  return pop();  // everything tied: serve in FIFO order
}

void FifoQueue::clear() {
  entries_.clear();
  backlog_bits_ = 0;
}

}  // namespace emcast::sim
