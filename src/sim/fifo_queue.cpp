#include "sim/fifo_queue.hpp"

#include <algorithm>
#include <cassert>

namespace emcast::sim {

void FifoQueue::push(Packet p) {
  backlog_bits_ += p.size;
  peak_backlog_bits_ = std::max(peak_backlog_bits_, backlog_bits_);
  ++total_enqueued_;
  packets_.push_back(std::move(p));
}

const Packet* FifoQueue::front() const {
  return packets_.empty() ? nullptr : &packets_.front();
}

Packet FifoQueue::pop() {
  assert(!packets_.empty());
  Packet p = std::move(packets_.front());
  packets_.pop_front();
  backlog_bits_ -= p.size;
  if (backlog_bits_ < 0) backlog_bits_ = 0;  // guard float drift
  return p;
}

Packet FifoQueue::pop_newest() {
  assert(!packets_.empty());
  Packet p = std::move(packets_.back());
  packets_.pop_back();
  backlog_bits_ -= p.size;
  if (backlog_bits_ < 0) backlog_bits_ = 0;
  return p;
}

void FifoQueue::clear() {
  packets_.clear();
  backlog_bits_ = 0;
}

}  // namespace emcast::sim
