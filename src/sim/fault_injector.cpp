#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emcast::sim {

void FaultInjector::set_schedule(std::vector<FaultEvent> schedule) {
  for (const FaultEvent& ev : schedule) {
    if (!std::isfinite(ev.at) || ev.at < 0) {
      throw std::invalid_argument(
          "FaultInjector: event times must be finite and >= 0");
    }
  }
  std::stable_sort(
      schedule.begin(), schedule.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  schedule_ = std::move(schedule);
}

void FaultInjector::arm(Engine& engine) {
  if (schedule_.empty()) return;
  for (std::size_t k = 0; k < engine.shard_count(); ++k) {
    const SimContext ctx = engine.context(k);
    ctx.schedule_at(schedule_.front().at, [this, ctx] { fire(ctx, 0); });
  }
}

void FaultInjector::fire(SimContext ctx, std::size_t index) {
  if (handler_) handler_(ctx, schedule_[index]);
  const std::size_t next = index + 1;
  if (next < schedule_.size()) {
    ctx.schedule_at(schedule_[next].at,
                    [this, ctx, next] { fire(ctx, next); });
  }
}

}  // namespace emcast::sim
