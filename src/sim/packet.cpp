#include "sim/packet.hpp"

// Packet is a plain aggregate; this translation unit exists so the header
// participates in the library build (and future non-inline helpers have a
// home).
namespace emcast::sim {}
