#pragma once
// Cross-shard staging mailbox of the sharded simulator.  One mailbox per
// ordered (source shard, destination shard) pair: the source's worker
// thread is the only producer, the destination's worker the only
// consumer, so the fast path is a lock-free SPSC ring.  Messages are
// *staged* during a window and drained only at window barriers, which is
// what makes the ring's fixed capacity safe to overflow into a
// producer-private spill vector: between the end-of-window barrier and
// the next window, producers are provably quiescent, so the consumer may
// read the spill without synchronisation beyond the barrier edge itself.
//
// Ordering.  post() stamps each message with a per-mailbox sequence
// number; the drain phase merges all of a shard's incoming mailboxes and
// sorts by (deliver_at, source shard, seq) before scheduling, so the
// local schedule order — and with it the (time, seq) fire order of the
// destination shard — is a pure function of the model, not of thread
// timing or mailbox capacity.

#include <cstdint>
#include <vector>

#include "sim/packet.hpp"
#include "util/spsc_ring.hpp"
#include "util/types.hpp"

namespace emcast::sim {

/// A packet handed from one shard to another, arriving at `deliver_at`
/// (>= the posting window's end — the conservative lookahead contract).
struct CrossShardMsg {
  Packet packet;
  Time deliver_at = 0;
  std::uint64_t seq = 0;          ///< per-mailbox post order
  std::uint32_t source_shard = 0;
  std::int32_t dest_host = -1;    ///< model routing key (host index)
};
static_assert(std::is_trivially_copyable_v<CrossShardMsg>);

/// Deterministic drain order: (deliver_at, source shard, seq).  Times are
/// compared through their order-preserving integer image, exactly like
/// the pending-set policies, so drains agree bit-for-bit with event
/// ordering.
bool msg_before(const CrossShardMsg& a, const CrossShardMsg& b);

class ShardMailbox {
 public:
  ShardMailbox() = default;
  ShardMailbox(const ShardMailbox&) = delete;
  ShardMailbox& operator=(const ShardMailbox&) = delete;

  /// Size the ring and pre-warm the spill arena.  Call before the shard
  /// workers start (not thread-safe).
  void init(std::uint32_t source_shard, std::size_t ring_capacity);

  /// Producer (source shard's worker, during its window): stage a packet.
  /// A full ring spills — allocation-free once the spill vector has grown
  /// past the high-water mark of any earlier window.
  void post(const Packet& p, std::int32_t dest_host, Time deliver_at);

  /// Producer, batch: stage a train of `n` packets with ONE ring
  /// free-space check and ONE release store for the whole prefix that
  /// fits (messages are built directly in their ring slots — no staging
  /// copy); the tail past the ring's free space spills in one append.
  /// Equivalent to n post() calls: per-mailbox seqs are assigned in item
  /// order, and ring entries precede spill entries exactly as post's
  /// fills-then-spills invariant guarantees.
  void post_batch(const DeliveryItem* items, std::size_t n);

  /// Consumer (destination shard's worker, at a window barrier): append
  /// every staged message to `out` and leave the mailbox empty.  Must
  /// only run while producers are quiescent (between windows).
  void drain_into(std::vector<CrossShardMsg>& out);

  /// Consumer-side injection (process backend): append a message that a
  /// REMOTE process's copy of this mailbox already stamped — seq, source
  /// shard and the posted/spilled telemetry all belong to the producer's
  /// copy, so none are touched here.  The next drain merges injected
  /// messages into the same (deliver_at, source shard, seq) sort as
  /// native ones, which is exactly why cross-process handoffs land in
  /// the identical order the in-process backend produces.  Only legal
  /// between windows (the consumer's own drain phase).
  void inject(const CrossShardMsg& m) { spill_.push_back(m); }

  /// Rewind for a new run: empty the ring and spill arenas WITHOUT
  /// releasing them and restart the per-mailbox sequence and telemetry
  /// counters.  NOT thread-safe — call only between runs, with every
  /// worker quiescent.  Never allocates.
  void reset();

  std::uint64_t posted() const { return posted_; }
  std::uint64_t spilled() const { return spilled_; }

  /// Arena introspection for the zero-allocation steady-state proofs.
  const void* ring_buffer() const { return ring_.buffer(); }
  std::size_t spill_capacity() const { return spill_.capacity(); }

 private:
  util::SpscRing<CrossShardMsg> ring_;
  std::vector<CrossShardMsg> spill_;  ///< producer-owned between barriers
  std::uint64_t next_seq_ = 0;        ///< producer-side post counter
  std::uint64_t posted_ = 0;
  std::uint64_t spilled_ = 0;
  std::uint32_t source_shard_ = 0;
};

}  // namespace emcast::sim
