#include "sim/tracer.hpp"

#include "util/bytes.hpp"

namespace emcast::sim {

DelayTracer& DelayTracer::operator=(const DelayTracer& other) {
  if (this == &other) return *this;
  warmup_ = other.warmup_;
  all_ = other.all_;
  per_flow_ = other.per_flow_;
  dropped_warmup_ = other.dropped_warmup_;
  quantiles_ = other.quantiles_
                   ? std::make_unique<util::LogHistogram>(*other.quantiles_)
                   : nullptr;
  return *this;
}

void DelayTracer::record(const Packet& p, Time now) {
  record_delay(p.flow, p.age(now), now);
}

void DelayTracer::record_delay(FlowId flow, Time delay, Time now) {
  if (now < warmup_) {
    ++dropped_warmup_;
    return;
  }
  all_.add(delay);
  per_flow_[flow].add(delay);
  if (quantiles_) quantiles_->add(delay);
}

void DelayTracer::merge(const DelayTracer& other) {
  all_.merge(other.all_);
  for (const auto& [flow, stats] : other.per_flow_) {
    per_flow_[flow].merge(stats);
  }
  dropped_warmup_ += other.dropped_warmup_;
  if (quantiles_ && other.quantiles_) quantiles_->merge(*other.quantiles_);
}

void DelayTracer::save(util::ByteWriter& w) const {
  all_.save(w);
  w.u64(dropped_warmup_);
  w.u32(static_cast<std::uint32_t>(per_flow_.size()));
  for (const auto& [flow, stats] : per_flow_) {
    w.i32(flow);
    stats.save(w);
  }
  w.u8(quantiles_ ? 1 : 0);
  if (quantiles_) quantiles_->save(w);
}

void DelayTracer::load(util::ByteReader& r) {
  all_.load(r);
  dropped_warmup_ = r.u64();
  per_flow_.clear();
  const std::uint32_t flows = r.u32();
  for (std::uint32_t i = 0; i < flows; ++i) {
    const FlowId flow = r.i32();
    per_flow_[flow].load(r);
  }
  if (r.u8() != 0) {
    if (!quantiles_) quantiles_ = std::make_unique<util::LogHistogram>();
    quantiles_->load(r);
  } else {
    quantiles_.reset();
  }
}

void DelayTracer::enable_quantiles(double lo, double hi,
                                   double relative_error) {
  quantiles_ = std::make_unique<util::LogHistogram>(lo, hi, relative_error);
}

double DelayTracer::quantile(double q) const {
  return quantiles_ ? quantiles_->quantile(q) : 0.0;
}

std::size_t DelayTracer::memory_bytes() const {
  // Rough rb-tree node cost: payload + colour/parent/children pointers.
  const std::size_t node =
      sizeof(std::pair<FlowId, util::OnlineStats>) + 4 * sizeof(void*);
  return sizeof(*this) + per_flow_.size() * node +
         (quantiles_ ? quantiles_->memory_bytes() : 0);
}

const util::OnlineStats& DelayTracer::flow(FlowId f) const {
  static const util::OnlineStats kEmpty;
  auto it = per_flow_.find(f);
  return it == per_flow_.end() ? kEmpty : it->second;
}

}  // namespace emcast::sim
