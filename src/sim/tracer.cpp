#include "sim/tracer.hpp"

namespace emcast::sim {

void DelayTracer::record(const Packet& p, Time now) {
  record_delay(p.flow, p.age(now), now);
}

void DelayTracer::record_delay(FlowId flow, Time delay, Time now) {
  if (now < warmup_) {
    ++dropped_warmup_;
    return;
  }
  all_.add(delay);
  per_flow_[flow].add(delay);
}

void DelayTracer::merge(const DelayTracer& other) {
  all_.merge(other.all_);
  for (const auto& [flow, stats] : other.per_flow_) {
    per_flow_[flow].merge(stats);
  }
  dropped_warmup_ += other.dropped_warmup_;
}

const util::OnlineStats& DelayTracer::flow(FlowId f) const {
  static const util::OnlineStats kEmpty;
  auto it = per_flow_.find(f);
  return it == per_flow_.end() ? kEmpty : it->second;
}

}  // namespace emcast::sim
