#include "sim/calendar_queue.hpp"

#include <algorithm>

namespace emcast::sim {

void CalendarPendingSet::sort_bucket(std::size_t b) {
  const std::uint32_t head = heads_[b] & kIndexMask;
  if (pool_[head].next == kNil) {  // single node: trivially sorted
    heads_[b] = head | kSortedBit;
    return;
  }
  // Permute the payloads through scratch storage; the chain's node set is
  // reused, so sorting allocates nothing once the buffers are warm.
  scratch_.clear();
  idx_scratch_.clear();
  for (std::uint32_t idx = head; idx != kNil; idx = pool_[idx].next) {
    idx_scratch_.push_back(idx);
    scratch_.push_back(pool_[idx].entry);
  }
  std::sort(scratch_.begin(), scratch_.end(),
            [](const PendingEntry& a, const PendingEntry& b2) {
              return entry_before(a, b2);
            });
  const std::size_t k = idx_scratch_.size();
  for (std::size_t i = 0; i < k; ++i) {
    Node& n = pool_[idx_scratch_[i]];
    n.entry = scratch_[i];
    n.next = i + 1 < k ? idx_scratch_[i + 1] : kNil;
  }
  heads_[b] = idx_scratch_[0] | kSortedBit;
}

void CalendarPendingSet::insert_batch(const PendingEntry* entries,
                                      std::size_t count) {
  std::size_t i = 0;
  while (i < count) {
    const PendingEntry cur = entries[i];
    if (size_ == 0) {
      front_ = cur;  // the empty->one transition stays structure-free
      size_ = 1;
      ++i;
      continue;
    }
    if (entry_before(cur, front_)) {
      // New global minimum: same exchange as push().  The displaced front
      // is >= everything structured, and later batch entries cannot beat
      // `cur` again without starting a new (descending) run.
      insert_structure(front_);
      front_ = cur;
      ++size_;
      ++i;
      continue;
    }
    // Maximal nondecreasing run starting at i.  Every entry of the run is
    // >= entries[i] >= front_ in (time_key, seq) order — batch sequence
    // numbers ascend with the index — so the whole run bypasses the front
    // register and goes straight to the structure.
    std::size_t j = i + 1;
    while (j < count && entries[j].time_key >= entries[j - 1].time_key) ++j;
    insert_run(entries + i, j - i);
    i = j;
  }
}

void CalendarPendingSet::insert_run(const PendingEntry* e, std::size_t m) {
  cursor_ = kNoCursor;
  // Route runs that can change the mode or the year geometry through the
  // per-entry path: mode promotion, bucket growth, year re-basing and the
  // empty-structure re-aim are all rare, and insert_structure already
  // implements each transition with the strong guarantee.
  const bool slow =
      small_mode_
          ? size_ + m > kSmallModeMax
          : heads_.empty() ||
                (size_ + m > 2 * heads_.size() &&
                 heads_.size() < kMaxBuckets) ||
                e[0].time_key < year_base_ ||
                (in_buckets_ == 0 && overflow_.empty());
  if (slow) [[unlikely]] {
    for (std::size_t k = 0; k < m; ++k) {
      insert_structure(e[k]);
      ++size_;
    }
    return;
  }
  if (small_mode_) {
    overflow_.reserve(size_ + m);  // one growth check for the whole run
    for (std::size_t k = 0; k < m; ++k) {
      overflow_.push(e[k]);
      ++size_;
    }
    return;
  }
  // Calendar fast path: below the grow threshold and inside the year's
  // base, so nothing below can rebuild.  Make the node-pool growth a
  // single up-front reservation, then link day-chunks nothrow.  (Between
  // rebuilds the pool normally already holds 2x the bucket count — the
  // reserve only ever allocates in the saturated kMaxBuckets regime.)
  if (pool_.size() + m > pool_.capacity()) {
    pool_.reserve(std::max(2 * pool_.capacity(), pool_.size() + m));
  }
  std::size_t k = 0;
  while (k < m && e[k].time_key < year_end_) {
    // Chunk of consecutive entries sharing one day: one bucket head
    // read/write and one bitmap/hint update for the whole chunk.
    const std::size_t b = bucket_of(e[k].time_key);
    std::size_t c = k + 1;
    while (c < m && e[c].time_key < year_end_ &&
           bucket_of(e[c].time_key) == b) {
      ++c;
    }
    link_run(b, e + k, c - k);
    size_ += c - k;
    k = c;
  }
  // Nondecreasing run: once a key reaches year_end_, the tail is all
  // overflow-year territory.
  for (; k < m; ++k) {
    overflow_.push(e[k]);
    ++size_;
  }
}

void CalendarPendingSet::link_run(std::size_t b, const PendingEntry* e,
                                  std::size_t m) noexcept {
  // Build the chunk chain front-to-back (the entries are already in
  // (time_key, seq) order), then prepend it whole.
  const std::uint32_t first = alloc_node();
  pool_[first].entry = e[0];
  std::uint32_t prev = first;
  for (std::size_t k = 1; k < m; ++k) {
    const std::uint32_t node = alloc_node();
    pool_[node].entry = e[k];
    pool_[prev].next = node;
    prev = node;
  }
  const std::uint32_t head = heads_[b];
  if (head == kNil) {
    pool_[prev].next = kNil;
    heads_[b] = first | kSortedBit;  // the chunk itself is sorted
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  } else {
    const std::uint32_t head_idx = head & kIndexMask;
    pool_[prev].next = head_idx;
    // Same rule as link_entry, applied once per chunk: prepending a whole
    // sorted chunk below the old minimum keeps a sorted chain sorted.
    const bool stays_sorted =
        (head & kSortedBit) != 0 &&
        entry_before(pool_[prev].entry, pool_[head_idx].entry);
    heads_[b] = first | (stays_sorted ? kSortedBit : 0u);
  }
  if (b < hint_) hint_ = b;
  in_buckets_ += m;
}

void CalendarPendingSet::clear() noexcept {
  // pool_.clear() drops every chain at once (nodes are trivially
  // destructible) while the vector keeps its capacity, so the next
  // promotion rebuild's reserve() is a no-op on a warmed queue.
  pool_.clear();
  free_head_ = kNil;
  std::fill(heads_.begin(), heads_.end(), kNil);
  std::fill(occupied_.begin(), occupied_.end(), 0);
  overflow_.clear();
  year_base_ = 0;
  year_end_ = 0;
  day_shift_ = 0;
  in_buckets_ = 0;
  hint_ = 0;
  size_ = 0;
  cursor_ = kNoCursor;
  small_mode_ = true;
  mode_switches_ = 0;
  rebuilds_ = 0;
  year_advances_ = 0;
}

void CalendarPendingSet::collapse_to_small() {
  // The population drained below the hysteresis floor: hand the bucket
  // chains back to the overflow heap and run heap-only until the count
  // earns the calendar again.  All arrays are retained — a later upgrade
  // rebuild reuses them — so mode churn never allocates in steady state.
  small_mode_ = true;
  ++mode_switches_;
  cursor_ = kNoCursor;
  overflow_.reserve(size_);
  if (in_buckets_ != 0) {
    for (std::size_t w = 0; w < occupied_.size(); ++w) {
      std::uint64_t word = occupied_[w];
      occupied_[w] = 0;
      while (word != 0) {
        const std::size_t b =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        std::uint32_t idx = heads_[b] & kIndexMask;
        heads_[b] = kNil;
        while (idx != kNil) {
          const std::uint32_t next = pool_[idx].next;
          overflow_.push(pool_[idx].entry);  // capacity reserved above
          free_node(idx);
          idx = next;
        }
      }
    }
  }
  in_buckets_ = 0;
  hint_ = 0;
}

void CalendarPendingSet::advance_year() {
  // Reached with every bucket empty (heads all kNil, bitmap zero) and the
  // whole population in the overflow heap: re-aim the year at the overflow
  // minimum — keeping the bucket count and day width, which track the
  // population size and spacing, not its position — and admit the new
  // year's events.  No clearing, no scratch, no allocation: the node pool
  // is reserved for the full population at every rebuild.
  ++year_advances_;
  assert(!overflow_.empty() && in_buckets_ == 0);
  year_base_ = overflow_.min().time_key &
               ~((std::uint64_t{1} << day_shift_) - 1);
  const std::uint64_t span = static_cast<std::uint64_t>(heads_.size())
                             << day_shift_;
  year_end_ = year_base_ > ~std::uint64_t{0} - span ? ~std::uint64_t{0}
                                                    : year_base_ + span;
  std::size_t transferred = 0;
  while (!overflow_.empty() && overflow_.min().time_key < year_end_) {
    link_entry(overflow_.pop_min());  // already counted in size_
    ++transferred;
  }
  if (overflow_.size() > 4 * transferred) {
    // The year admitted only a sliver: the day width — derived from a
    // population that has since drained — no longer matches the remaining
    // events' spacing.  Re-derive the geometry from what is actually left.
    rebuild(nullptr);
  }
}

void CalendarPendingSet::rebuild(const PendingEntry* extra) {
  cursor_ = kNoCursor;
  // A push below year_base forced this rebuild: leave a quarter-year of
  // headroom under the new minimum, so a descending key sequence re-bases
  // once per quarter-year of descent instead of on every new minimum.
  const bool underflow =
      extra != nullptr && !heads_.empty() && extra->time_key < year_base_;
  // ---- gather: walk every chain and the overflow heap into scratch.
  // Allocations may throw here; nothing has been torn down yet.
  scratch_.clear();
  if (in_buckets_ != 0) {
    for (std::size_t w = 0; w < occupied_.size(); ++w) {
      std::uint64_t word = occupied_[w];
      while (word != 0) {
        const std::size_t b =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        for (std::uint32_t idx = heads_[b] & kIndexMask; idx != kNil;
             idx = pool_[idx].next) {
          scratch_.push_back(pool_[idx].entry);
        }
      }
    }
  }
  scratch_.insert(scratch_.end(), overflow_.begin(), overflow_.end());
  if (extra != nullptr) scratch_.push_back(*extra);
  const std::size_t n = scratch_.size();

  // ---- derive the geometry: bucket count tracks the population, day
  // width tracks the mean key gap of the denser lower half, so bursts get
  // fine days and far-future stragglers ride the overflow heap.
  std::size_t nbuckets = kMinBuckets;
  while (nbuckets < n && nbuckets < kMaxBuckets) nbuckets <<= 1;
  std::uint32_t shift = 0;
  std::uint64_t kmin = 0;
  if (n != 0) {
    kmin = scratch_[0].time_key;
    std::uint64_t kmax = kmin;
    for (const PendingEntry& e : scratch_) {
      kmin = std::min(kmin, e.time_key);
      kmax = std::max(kmax, e.time_key);
    }
    if (n >= 2 && kmax != kmin) {
      // Mean key gap over the trimmed (90th-percentile) span: far-future
      // outliers must not stretch the day width — they ride the overflow
      // heap instead — but the bulk population should fit the year, so
      // drains stream through the buckets rather than cycling events
      // through the overflow heap.  Ceil-log2: rounding the width down
      // would halve the year's coverage.
      const std::size_t trim = n - 1 - n / 10;
      const auto p90 = scratch_.begin() + static_cast<std::ptrdiff_t>(trim);
      std::nth_element(scratch_.begin(), p90, scratch_.end(),
                       [](const PendingEntry& a, const PendingEntry& b) {
                         return a.time_key < b.time_key;
                       });
      const std::uint64_t width = std::max<std::uint64_t>(
          1, (p90->time_key - kmin) / static_cast<std::uint64_t>(trim));
      shift = width <= 1
                  ? 0
                  : static_cast<std::uint32_t>(std::bit_width(width - 1));
      if (shift > kMaxDayShift) shift = kMaxDayShift;
    }
  }
  // The base comes from the STRUCTURE minimum, never the front register:
  // it pins the structure minimum into bucket 0, which guarantees a
  // rebuild with n >= 1 leaves at least one in-year entry — the
  // termination guarantee for locate_min's advance loop.  Keys landing in
  // the (front, base) gap re-base through the underflow slack above.

  // ---- reserve everything the redistribution will touch (still throwing
  // territory; the old structure is intact if anything below throws).
  // Until the next grow rebuild the population is bounded by twice the
  // bucket count, and how it splits between chains and overflow depends on
  // the keys — so every arena is reserved to that count-driven bound.
  // This keeps the whole policy allocation-free between rebuilds and makes
  // steady-state capacities a function of operation counts alone.
  const std::size_t staging =
      std::max(n, nbuckets < kMaxBuckets ? 2 * nbuckets : n);
  pool_.reserve(staging);
  scratch_.reserve(staging);
  idx_scratch_.reserve(staging);
  const std::size_t words = (nbuckets + 63) / 64;
  if (heads_.size() < nbuckets) heads_.resize(nbuckets);
  if (occupied_.size() < words) occupied_.resize(words);
  overflow_.reserve(staging);

  // ---- commit: nothrow from here on.
  heads_.resize(nbuckets);
  occupied_.resize(words);
  std::fill(heads_.begin(), heads_.end(), kNil);
  std::fill(occupied_.begin(), occupied_.end(), 0);
  pool_.clear();
  free_head_ = kNil;
  overflow_.clear();
  in_buckets_ = 0;
  hint_ = 0;
  day_shift_ = shift;
  year_base_ = n != 0 ? kmin & ~((std::uint64_t{1} << shift) - 1) : 0;
  if (underflow) {
    const std::uint64_t slack = (static_cast<std::uint64_t>(nbuckets) / 4)
                                << shift;
    year_base_ = year_base_ > slack ? year_base_ - slack : 0;
  }
  const std::uint64_t span = static_cast<std::uint64_t>(nbuckets) << shift;
  year_end_ = year_base_ > ~std::uint64_t{0} - span ? ~std::uint64_t{0}
                                                    : year_base_ + span;
  // size_ is untouched: rebuild restructures, the callers account.
  for (const PendingEntry& e : scratch_) {
    if (e.time_key >= year_end_) {
      overflow_.push(e);  // capacity reserved above: cannot throw
    } else {
      link_entry(e);  // pool capacity reserved above: cannot throw
    }
  }
  ++rebuilds_;
}

}  // namespace emcast::sim
