#pragma once
// Engine-agnostic simulation API.
//
// Components (hosts, regulators, multiplexers, links, traffic sources)
// talk to the kernel through a `SimContext` — a 16-byte non-owning handle
// — instead of holding a concrete `Simulator&`.  The same component code
// then runs unchanged on the single-threaded kernel and inside one shard
// of a ShardedSimulator: scheduling always targets the *local* kernel (a
// shard's kernel IS a full BasicSimulator, so schedule_in/at compile to
// the exact same inlined push with zero extra dispatch), and the one
// genuinely location-dependent operation — handing a packet to another
// host — goes through `deliver()`, which resolves the destination:
//
//   single-threaded backend:  schedule the model's delivery handler on
//                             the (only) kernel at the arrival time;
//   sharded backend, local:   same, on the owning shard's kernel;
//   sharded backend, remote:  stage the packet in the cross-shard mailbox
//                             (Shard::post, which asserts the conservative
//                             lookahead contract deliver_at >= now + L).
//
// In every case the registered DeliverFn fires AT the arrival time, as an
// ordinary event on the kernel that owns the destination host — so model
// code cannot observe which backend it runs on, and event *times* are
// computed from the same float operands in the same order on both.  That
// is the property the differential determinism suites pin (byte-identical
// canonical traces across engines, shard counts and thread counts).
//
// `Engine` is the harness that owns a backend (one Simulator, or a
// ShardedSimulator plus the host→shard map) and vends SimContexts.  A
// bare `Simulator&` also converts implicitly to a SimContext — scheduling
// works, deliver() does not (it needs an Engine with a handler) — so
// single-kernel call sites (unit tests, calibration probes) need no
// ceremony.
//
// Contracts preserved from the Simulator API:
//   - zero steady-state allocation: SimContext is two pointers, passed by
//     value; schedule_in/at forward to the slab-backed kernel unchanged;
//     deliver()'s event capture (backend*, host, Packet) uses the fat
//     slot pool exactly like the hand-written sharded models did;
//   - byte-identical (time, seq) ordering: the handle adds no reordering
//     of its own — local scheduling order is the call order, cross-shard
//     drains keep the (deliver_at, source shard, seq) merge order.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/packet.hpp"
#include "sim/process_backend.hpp"
#include "sim/shard.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace emcast::sim {

class SimContext;
class Engine;

/// Model-level delivery callback, registered once on the Engine: invoked
/// at the delivery time, as an event on the kernel owning `host`, with
/// that kernel's context.  Stored in the Engine (setup-time allocation is
/// fine); the per-delivery event only captures a pointer to it.
using DeliverFn = std::function<void(SimContext, HostId, const Packet&)>;

namespace detail {

/// One per kernel: the glue a SimContext dereferences.  Owned by the
/// Engine, address-stable for the Engine's lifetime.
struct ContextBackend {
  Simulator* sim = nullptr;
  Shard* shard = nullptr;  ///< null on the single-threaded backend
  std::uint32_t index = 0;
  /// host → owning backend index; null means every host is local.
  const std::uint32_t* shard_of = nullptr;
  std::size_t shard_of_size = 0;
  const DeliverFn* on_deliver = nullptr;
};

}  // namespace detail

/// The 16-byte engine-agnostic kernel handle (see the header comment).
/// Owns nothing and is trivially copyable: pass by value, capture in
/// event lambdas.  It must not outlive the Engine/kernel that issued it,
/// but it DOES stay valid across Engine::reset()/Simulator::reset — the
/// backend records and kernels it points at are address-stable for the
/// engine's lifetime, so warm-reuse callers may keep contexts across
/// runs (the events and handles scheduled through them do not survive).
class SimContext {
 public:
  SimContext() = default;

  /// Implicit view of a bare kernel: scheduling works, deliver() does not
  /// (there is no host map or handler).  This is the migration path for
  /// single-kernel call sites — components taking SimContext accept a
  /// plain Simulator unchanged.
  /*implicit*/ SimContext(Simulator& sim) : sim_(&sim) {}

  bool valid() const { return sim_ != nullptr; }

  Time now() const { return sim_->now(); }

  /// Schedule fn at now()+delay on the local kernel (see
  /// BasicSimulator::schedule_in for the zero-allocation contract).
  template <typename F>
  EventHandle schedule_in(Time delay, F&& fn) const {
    return sim_->schedule_in(delay, std::forward<F>(fn));
  }

  /// Schedule fn at absolute local time t >= now().
  template <typename F>
  EventHandle schedule_at(Time t, F&& fn) const {
    return sim_->schedule_at(t, std::forward<F>(fn));
  }

  /// Batch-schedule `count` events on the local kernel with one calendar
  /// touch per monotone time run (see BasicSimulator::schedule_batch).
  /// make(i) returns the i-th event's callable; batch events are not
  /// individually cancellable.  Timer trains (periodic sources) use this
  /// to amortise the per-event queue walk.
  template <typename Make>
  void schedule_batch(const Time* times, std::size_t count,
                      Make&& make) const {
    sim_->schedule_batch(times, count, std::forward<Make>(make));
  }

  /// Cancel a previously scheduled event (idempotent, safe after fire).
  void cancel(EventHandle& h) const { h.cancel(); }

  /// Request the local kernel's run() to return after the current event.
  /// (On the sharded backend this stops the owning shard's window run;
  /// the round protocol completes the window normally.)
  void stop() const { sim_->stop(); }

  // -- backend introspection ----------------------------------------------

  /// Index of the kernel this context schedules on (0 on the single
  /// backend).  Models use it to index per-shard state (tracers, traces)
  /// without any cross-thread sharing.
  std::size_t shard_index() const {
    return backend_ != nullptr ? backend_->index : 0;
  }

  /// True when this context belongs to a sharded backend.
  bool sharded() const {
    return backend_ != nullptr && backend_->shard != nullptr;
  }

  /// The conservative lookahead of the sharded backend (0 when single).
  Time lookahead() const {
    return sharded() ? backend_->shard->lookahead() : 0.0;
  }

  /// Owning backend index of `host` (0 when single / no map).  `host`
  /// must be covered by the engine's map (see EngineConfig::shard_of).
  std::size_t owner_of(HostId host) const {
    if (backend_ == nullptr || backend_->shard_of == nullptr) return 0;
    assert(static_cast<std::size_t>(host) < backend_->shard_of_size &&
           "host beyond the engine's shard_of map");
    return backend_->shard_of[host];
  }

  /// True when `host`'s events run on this context's kernel.
  bool local(HostId host) const { return owner_of(host) == shard_index(); }

  /// Location-transparent handoff: at simulated time `at`, the Engine's
  /// DeliverFn fires with (owning kernel's context, host, p).  Requires an
  /// Engine-built context.  On the sharded backend a remote destination
  /// must satisfy the lookahead contract (at >= now + lookahead), which
  /// Shard::post asserts; a local destination (any destination, on the
  /// single backend) only needs at >= now.
  void deliver(HostId host, const Packet& p, Time at) const {
    const detail::ContextBackend* b = backend_;
    assert(b != nullptr && b->on_deliver != nullptr &&
           "SimContext::deliver needs an Engine-built context "
           "(set_deliver installed)");
    assert((b->shard_of == nullptr ||
            static_cast<std::size_t>(host) < b->shard_of_size) &&
           "deliver: host beyond the engine's shard_of map");
    const std::uint32_t dest =
        b->shard_of != nullptr ? b->shard_of[host] : b->index;
    if (b->shard == nullptr || dest == b->index) {
      sim_->schedule_at(at, [b, host, p] {
        (*b->on_deliver)(SimContext(b), host, p);
      });
    } else {
      b->shard->post(dest, p, host, at);
    }
  }

  /// Batch flavour of deliver(): hand over a whole train of packet
  /// copies in one call.  Exactly equivalent to calling deliver(items[i])
  /// in index order — local arrivals keep their scheduling order
  /// (sequence numbers are assigned in index order) and remote arrivals
  /// keep their per-mailbox post order — but consecutive same-destination
  /// runs cost one kernel/mailbox touch each: a local run becomes one
  /// schedule_batch (one calendar touch per monotone time run), a remote
  /// run one Shard::post_batch (one ring publish + one spill check).
  /// Models fanning a packet out to many children (the multigroup
  /// forward path) fill a small DeliveryItem array and call this.
  void deliver_batch(const DeliveryItem* items, std::size_t n) const;

  /// Escape hatch to the concrete local kernel (telemetry, tests).
  Simulator& kernel() const { return *sim_; }

 private:
  friend class Engine;
  explicit SimContext(const detail::ContextBackend* b)
      : sim_(b->sim), backend_(b) {}

  Simulator* sim_ = nullptr;
  const detail::ContextBackend* backend_ = nullptr;
};

static_assert(sizeof(SimContext) == 16, "SimContext is a two-pointer handle");

inline void SimContext::deliver_batch(const DeliveryItem* items,
                                      std::size_t n) const {
  const detail::ContextBackend* b = backend_;
  assert(b != nullptr && b->on_deliver != nullptr &&
         "SimContext::deliver_batch needs an Engine-built context "
         "(set_deliver installed)");
  std::size_t i = 0;
  while (i < n) {
    assert((b->shard_of == nullptr ||
            static_cast<std::size_t>(items[i].host) < b->shard_of_size) &&
           "deliver_batch: host beyond the engine's shard_of map");
    const std::uint32_t dest =
        b->shard_of != nullptr ? b->shard_of[items[i].host] : b->index;
    // Extend the run while consecutive items share the destination shard.
    std::size_t j = i + 1;
    while (j < n) {
      assert((b->shard_of == nullptr ||
              static_cast<std::size_t>(items[j].host) < b->shard_of_size) &&
             "deliver_batch: host beyond the engine's shard_of map");
      const std::uint32_t d =
          b->shard_of != nullptr ? b->shard_of[items[j].host] : b->index;
      if (d != dest) break;
      ++j;
    }
    if (b->shard == nullptr || dest == b->index) {
      // Local run: one schedule_batch per fixed-size chunk (the times
      // array lives on the stack; the capture is the same fat
      // (backend, host, Packet) slot deliver() uses).
      constexpr std::size_t kChunk = 64;
      Time times[kChunk];
      for (std::size_t k = i; k < j; k += kChunk) {
        const std::size_t m = std::min(kChunk, j - k);
        for (std::size_t c = 0; c < m; ++c) times[c] = items[k + c].at;
        const DeliveryItem* chunk = items + k;
        sim_->schedule_batch(times, m, [b, chunk](std::size_t c) {
          return [b, host = chunk[c].host, p = chunk[c].packet] {
            (*b->on_deliver)(SimContext(b), host, p);
          };
        });
      }
    } else {
      b->shard->post_batch(dest, items + i, j - i);
    }
    i = j;
  }
}

/// Which kernel an Engine stands up.  Purely a performance/scale knob:
/// models written against SimContext produce byte-identical traces on
/// all three (given the model's event times are tie-free across hosts —
/// see docs/engine.md).  Process runs the same conservative-rounds
/// protocol as Sharded, but with one OS process per shard group and a
/// wire transport instead of shared-memory rings — the distributed
/// backend (sim/process_backend.hpp).
enum class EngineKind { Single, Sharded, Process };

const char* to_string(EngineKind kind);

struct EngineConfig {
  EngineKind kind = EngineKind::Single;
  /// -- Sharded only -------------------------------------------------------
  std::size_t shards = 1;
  /// Worker threads; 0 = min(shards, hardware_concurrency).  Results are
  /// identical for every value (ShardedSimulator's S-over-T contract).
  std::size_t threads = 0;
  /// Conservative lookahead: strict lower bound on the simulated-time
  /// delay of any cross-shard deliver().  Must be > 0 when sharded.
  Time lookahead = 0;
  std::size_t mailbox_capacity = 4096;
  bool pin_threads = false;
  /// host → owning shard.  Must cover every HostId the model passes to
  /// context_for_host / deliver (the multigroup experiments derive one
  /// entry per host from the overlay partition).  Copied into the
  /// Engine; entries are range-checked at construction, coverage is
  /// asserted at the lookup sites.  May be empty when shards == 1
  /// (everything local).
  std::vector<std::uint32_t> shard_of;
  /// Optional per-shard-pair lookahead matrix (shards² entries, flattened
  /// [src * shards + dst]); empty = the uniform scalar above.  See
  /// ShardedSimulator::set_lookahead_matrix for the contract — the
  /// experiments derive it from the partition's per-pair minimum
  /// cross-edge delay to widen the conservative windows.
  std::vector<Time> lookahead_matrix;
  /// -- Process only --------------------------------------------------------
  /// Worker processes; 0 = min(shards, hardware_concurrency).  A
  /// throughput knob like `threads` — results are identical for every
  /// value (same contiguous shard blocks).
  std::size_t processes = 0;
  /// Hub <-> worker transport: shared-memory rings or stream sockets.
  TransportKind transport = TransportKind::Shm;
  /// Deadline for every blocking channel operation on the process
  /// backend; a wedged peer surfaces as std::runtime_error after this.
  double timeout_seconds = 30.0;
};

/// Owns one backend — a single-threaded Simulator or a ShardedSimulator —
/// plus the delivery routing; vends SimContexts to the model.
///
/// An Engine is built once and may run MANY simulations: reset() rewinds
/// the backend between runs with every arena kept warm (event slabs,
/// pending-set buffers, mailbox rings, spill and drain vectors), so the
/// second and later runs allocate nothing in steady state — the warm-sweep
/// path of experiments::sweep_multigroup.  The backend kind, shard count,
/// worker count and mailbox capacity are construction-time choices; the
/// host->shard map and the lookahead may be re-derived per run through
/// the rebinding reset overload (sweep points build different overlays).
class Engine {
 public:
  explicit Engine(EngineConfig config);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Rewind for another run, keeping the current routing (shard_of map,
  /// lookahead) and the installed DeliverFn.
  ///
  /// Survives: every backend arena (see the class comment), the routing
  /// record addresses — contexts obtained from context()/context_for_host
  /// BEFORE the reset remain valid and equivalent to freshly obtained
  /// ones.  Invalidated: all pending events (discarded — a horizon-bounded
  /// run legitimately leaves beyond-horizon events behind, so Engine
  /// reset always discards), every EventHandle (permanently stale, safe
  /// no-ops), clocks (rewound to 0) and telemetry counters.  Model state
  /// the engine does not own — components, tracers, RNG streams — must be
  /// rebuilt by the caller; set_deliver() may be called again to install
  /// the new run's handler.  Throws std::logic_error if invoked from
  /// inside an executing event.  Never allocates.
  void reset();

  /// Sharded only: reset AND rebind the routing for the next run —
  /// install a new host->shard map (validated like the constructor's) and
  /// a new conservative lookahead (> 0, finite).  The shard count itself
  /// cannot change.  Throws std::invalid_argument on a Single engine.
  /// Any installed pair lookahead matrix is cleared (it was derived for
  /// the old routing); the overload below re-derives one atomically.
  void reset(std::vector<std::uint32_t> shard_of, Time lookahead);

  /// Rebinding reset that also installs a per-shard-pair lookahead
  /// matrix for the new routing (shards² entries or empty; see
  /// ShardedSimulator::set_lookahead_matrix).  If matrix validation
  /// throws, the engine is left reset on the uniform scalar.
  void reset(std::vector<std::uint32_t> shard_of, Time lookahead,
             std::vector<Time> lookahead_matrix);

  EngineKind kind() const { return config_.kind; }
  /// The (normalised) configuration the engine was built with; the
  /// warm-reuse callers compare it to decide reset vs. rebuild.
  const EngineConfig& config() const { return config_; }
  std::size_t shard_count() const { return backends_.size(); }
  std::size_t thread_count() const {
    return sharded_ != nullptr ? sharded_->thread_count() : 1;
  }
  /// Worker processes of the Process backend (0 otherwise).
  std::size_t process_count() const {
    return process_ != nullptr ? process_->process_count() : 0;
  }
  Time lookahead() const { return config_.lookahead; }

  /// Install the model's delivery handler (before run(); required for any
  /// SimContext::deliver call).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Sharded only (no-op on Single — one kernel has no windows): install
  /// a piecewise-constant lookahead plan for runs whose cross-shard edge
  /// set changes mid-run (see ShardedSimulator::set_lookahead_plan for
  /// the contract and the window-boundary remap rule).  Cleared by the
  /// rebinding reset overload; retained across plain reset().
  void set_lookahead_plan(std::vector<LookaheadEpoch> plan) {
    if (sharded_ != nullptr) {
      sharded_->set_lookahead_plan(std::move(plan));
    } else if (process_ != nullptr) {
      process_->set_lookahead_plan(std::move(plan));
    }
  }

  /// Number of epochs in the installed plan (0 = uniform lookahead).
  std::size_t lookahead_plan_epochs() const {
    if (sharded_ != nullptr) return sharded_->lookahead_plan().size();
    if (process_ != nullptr) return process_->lookahead_plan().size();
    return 0;
  }

  /// Process only (no-op elsewhere — in-process backends read model state
  /// directly): install the result-marshalling hooks that carry each
  /// shard's model results from its worker back to the hub (see
  /// ShardResultWriter/Reader).  Install before run(), alongside
  /// set_deliver; cleared the same way models clear their DeliverFn.
  void set_shard_results(ShardResultWriter writer, ShardResultReader reader) {
    if (process_ != nullptr) {
      process_->set_result_hooks(std::move(writer), std::move(reader));
    }
  }

  /// Context of kernel `shard` (0 on the single backend).
  SimContext context(std::size_t shard = 0) {
    return SimContext(&backends_[shard]);
  }

  /// Context of the kernel owning `host` — components are constructed
  /// against this, which is what "per-shard component ownership" means.
  SimContext context_for_host(HostId host) {
    return context(shard_of_host(host));
  }

  std::size_t shard_of_host(HostId host) const {
    if (config_.shard_of.empty()) return 0;
    assert(static_cast<std::size_t>(host) < config_.shard_of.size() &&
           "host beyond the engine's shard_of map");
    return config_.shard_of[static_cast<std::size_t>(host)];
  }

  /// Advance the backend until it drains or the clock passes `until`
  /// (events at exactly `until` execute, on both backends).  Returns the
  /// number of events executed by this call.
  std::uint64_t run(Time until = kTimeInfinity);

  // -- telemetry (zeros where the single backend has no counterpart) ------
  std::uint64_t events_executed() const;
  std::uint64_t rounds() const {
    if (sharded_ != nullptr) return sharded_->rounds();
    if (process_ != nullptr) return process_->rounds();
    return 0;
  }
  std::uint64_t messages_posted() const {
    if (sharded_ != nullptr) return sharded_->messages_posted();
    if (process_ != nullptr) return process_->messages_posted();
    return 0;
  }
  std::uint64_t messages_spilled() const {
    if (sharded_ != nullptr) return sharded_->messages_spilled();
    if (process_ != nullptr) return process_->messages_spilled();
    return 0;
  }

 private:
  EngineConfig config_;
  std::unique_ptr<Simulator> single_;
  std::unique_ptr<ShardedSimulator> sharded_;
  std::unique_ptr<ProcessSimulator> process_;
  DeliverFn deliver_;
  std::vector<detail::ContextBackend> backends_;
};

}  // namespace emcast::sim
