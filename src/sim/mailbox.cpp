#include "sim/mailbox.hpp"

#include <algorithm>

#include "sim/pending_entry.hpp"

namespace emcast::sim {

bool msg_before(const CrossShardMsg& a, const CrossShardMsg& b) {
  const std::uint64_t ka = time_key(a.deliver_at);
  const std::uint64_t kb = time_key(b.deliver_at);
  if (ka != kb) return ka < kb;
  if (a.source_shard != b.source_shard) return a.source_shard < b.source_shard;
  return a.seq < b.seq;
}

void ShardMailbox::init(std::uint32_t source_shard, std::size_t ring_capacity) {
  source_shard_ = source_shard;
  ring_.reset_capacity(ring_capacity);
  spill_.reserve(64);  // grows to the true high-water mark during warm-up
}

void ShardMailbox::post(const Packet& p, std::int32_t dest_host,
                        Time deliver_at) {
  CrossShardMsg m;
  m.packet = p;
  m.deliver_at = deliver_at;
  m.seq = next_seq_++;
  m.source_shard = source_shard_;
  m.dest_host = dest_host;
  ++posted_;
  if (!ring_.try_push(m)) {
    spill_.push_back(m);
    ++spilled_;
  }
}

void ShardMailbox::post_batch(const DeliveryItem* items, std::size_t n) {
  const std::size_t fit = std::min(n, ring_.free_space());
  for (std::size_t i = 0; i < fit; ++i) {
    CrossShardMsg& m = ring_.producer_slot(i);
    m.packet = items[i].packet;
    m.deliver_at = items[i].at;
    m.seq = next_seq_ + i;
    m.source_shard = source_shard_;
    m.dest_host = items[i].host;
  }
  if (fit != 0) ring_.publish(fit);
  for (std::size_t i = fit; i < n; ++i) {
    CrossShardMsg m;
    m.packet = items[i].packet;
    m.deliver_at = items[i].at;
    m.seq = next_seq_ + i;
    m.source_shard = source_shard_;
    m.dest_host = items[i].host;
    spill_.push_back(m);
  }
  next_seq_ += n;
  posted_ += n;
  spilled_ += n - fit;
}

void ShardMailbox::reset() {
  ring_.rewind();
  spill_.clear();  // capacity retained: the spill arena stays warm
  next_seq_ = 0;
  posted_ = 0;
  spilled_ = 0;
}

void ShardMailbox::drain_into(std::vector<CrossShardMsg>& out) {
  // Ring entries precede spill entries in post (seq) order: within one
  // window the ring fills monotonically and only then spills, and drains
  // empty both.
  CrossShardMsg m;
  while (ring_.try_pop(m)) out.push_back(m);
  out.insert(out.end(), spill_.begin(), spill_.end());
  spill_.clear();
}

}  // namespace emcast::sim
