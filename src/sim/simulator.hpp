#pragma once
// The simulation kernel: a virtual clock driving the event queue.
// Components hold a SimContext (or a Simulator& directly) and schedule
// callbacks; there is no global state, so many simulations run
// concurrently on different threads (one Simulator per sweep point).
//
// The kernel is parameterised on the event-queue type so the pending-set
// policy can be swapped (heap vs. calendar) without touching components;
// `Simulator` is the engine default — the calendar queue.  The two
// policies execute byte-identical event orders (the (time, seq) contract),
// so the choice is purely a performance knob.
//
// Reuse.  A kernel is built once and may run MANY simulations: reset()
// (or reset_discarding()) rewinds the clock and counters while keeping
// every arena of the queue warm, so the second and later runs perform
// zero steady-state allocations from their first event on.  See the
// reset() contract below for exactly what survives and what is
// invalidated.

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace emcast::sim {

template <typename Queue>
class BasicSimulator {
 public:
  BasicSimulator() = default;
  BasicSimulator(const BasicSimulator&) = delete;
  BasicSimulator& operator=(const BasicSimulator&) = delete;

  Time now() const { return now_; }

  /// Schedule fn at now()+delay (delay >= 0).  The callable goes straight
  /// into the event queue's slot storage — no temporaries, no allocation
  /// once the slot slabs are warm.  The returned handle is valid until the
  /// event fires, is cancelled, or the kernel is reset (after any of
  /// those, cancel()/pending() on it are safe no-ops).
  template <typename F>
  EventHandle schedule_in(Time delay, F&& fn) {
    // Negated >= so NaN falls through to the throw: `delay < 0.0` is false
    // for NaN, which would otherwise poison now_ + delay and corrupt the
    // pending-set ordering downstream.
    if (!(delay >= 0.0)) {
      throw std::invalid_argument("schedule_in: negative or NaN delay");
    }
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule fn at absolute time t >= now().  Handle semantics as above.
  template <typename F>
  EventHandle schedule_at(Time t, F&& fn) {
    if (!(t >= now_)) {  // rejects NaN as well as times in the past
      throw std::invalid_argument("schedule_at: time in the past or NaN");
    }
    return queue_.push(t, std::forward<F>(fn));
  }

  /// Schedule a train of events in one pending-set touch: `make(i)` yields
  /// the callable fired at `times[i]` (each >= now()).  Fires in exactly
  /// the order the equivalent loop of schedule_at calls would — sequence
  /// numbers are assigned in index order — but a nondecreasing train costs
  /// one calendar day-lookup per run instead of one per event.  No handles
  /// are returned: batch events are not individually cancellable.
  /// All-or-nothing on a throw.
  template <typename Make>
  void schedule_batch(const Time* times, std::size_t count, Make&& make) {
    for (std::size_t i = 0; i < count; ++i) {
      if (!(times[i] >= now_)) {  // rejects NaN as well as past times
        throw std::invalid_argument(
            "schedule_batch: time in the past or NaN");
      }
    }
    queue_.push_batch(times, count, std::forward<Make>(make));
  }

  /// Run until the event queue drains or the clock passes `until`.
  /// Returns the number of events executed.
  std::uint64_t run(Time until = kTimeInfinity) {
    const RunGuard guard{this};
    stop_requested_ = false;
    std::uint64_t executed = 0;
    while (!stop_requested_ && !queue_.empty()) {
      // next_time() skims cancelled events, so the subsequent pop() finds a
      // live event at the pending-set front without rescanning.
      if (queue_.next_time() > until) break;
      auto fired = queue_.pop();
      assert(fired.time + 1e-12 >= now_ && "event time went backwards");
      now_ = fired.time;
      fired.fn();
      ++executed;
    }
    // Advance the clock to the horizon when we ran out of events before it;
    // callers that measure rates rely on now() == until afterwards.
    if (!stop_requested_ && until != kTimeInfinity && now_ < until &&
        queue_.empty()) {
      now_ = until;
    }
    events_executed_ += executed;
    return executed;
  }

  /// Window-bounded run for the sharded scheduler: execute every event
  /// strictly *before* `bound` and stop, leaving the clock at the last
  /// fired event.  The exclusive bound is what makes conservative windows
  /// airtight — a cross-shard arrival stamped exactly at a window end W
  /// can never race an event this call executes, because nothing at or
  /// past W runs until the next window.  Returns events executed.
  std::uint64_t run_before(Time bound) {
    const RunGuard guard{this};
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.next_time() < bound) {
      auto fired = queue_.pop();
      assert(fired.time + 1e-12 >= now_ && "event time went backwards");
      now_ = fired.time;
      fired.fn();
      ++executed;
    }
    events_executed_ += executed;
    return executed;
  }

  /// Rewind the kernel for another simulation, keeping every arena warm.
  ///
  /// Survives a reset: the event queue's callback slabs, occupant arrays
  /// and free lists, the pending-set policy's buffers (node pool, bucket
  /// arrays, overflow heap, scratch), and the internal event sequence
  /// counter (kept monotone, so pre-reset handles stay stale forever).
  /// Invalidated: the clock (rewound to `now`), the stop flag, the
  /// events_executed() counter (restarts at zero), and every outstanding
  /// EventHandle — stale handles remain SAFE (cancel()/pending() are
  /// no-ops) but can never address a post-reset event.  Model-side state
  /// the kernel does not own — components, tracers, RNG streams — is
  /// untouched and must be rebuilt or re-seeded by the caller.
  ///
  /// This strict flavour rejects a queue that still holds live events
  /// (std::logic_error): silently discarding them is almost always a bug
  /// in a model that believed its run had drained.  Runs that stop at a
  /// horizon legitimately leave beyond-horizon events behind; use
  /// reset_discarding() there.  Both flavours throw std::logic_error when
  /// invoked from inside an executing event (reset mid-run would destroy
  /// the very capture the queue is firing) and std::invalid_argument for
  /// a negative or non-finite `now`.
  void reset(Time now = 0.0) {
    if (!queue_.empty()) {
      throw std::logic_error(
          "Simulator::reset: events pending — drain the run or use "
          "reset_discarding()");
    }
    reset_discarding(now);
  }

  /// reset(), but discard any still-pending events (captures destroyed,
  /// slots recycled).  Same guards and same warm-arena contract otherwise.
  void reset_discarding(Time now = 0.0) {
    if (run_depth_ != 0) {
      throw std::logic_error("Simulator::reset: reset mid-run");
    }
    if (!(now >= 0.0) || now == kTimeInfinity) {
      throw std::invalid_argument(
          "Simulator::reset: negative, infinite or NaN time");
    }
    queue_.clear();
    now_ = now;
    stop_requested_ = false;
    events_executed_ = 0;
  }

  /// Time of the earliest pending event (kTimeInfinity when drained).
  Time next_event_time() { return queue_.next_time(); }

  /// Request run() to return after the current event completes.
  void stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }

 private:
  /// Marks the kernel as executing so reset() can reject mid-run calls
  /// even when the request arrives from inside a fired event.  A depth
  /// counter (not a flag) keeps the guard correct under re-entrant runs.
  struct RunGuard {
    BasicSimulator* sim;
    explicit RunGuard(BasicSimulator* s) : sim(s) { ++sim->run_depth_; }
    ~RunGuard() { --sim->run_depth_; }
  };

  Queue queue_;
  Time now_ = 0.0;
  bool stop_requested_ = false;
  int run_depth_ = 0;
  std::uint64_t events_executed_ = 0;
};

/// The engine default: calendar-queue pending set.
using Simulator = BasicSimulator<EventQueue>;
/// Heap-policy kernel, kept for A/B benchmarking and differential tests.
using HeapSimulator = BasicSimulator<HeapEventQueue>;

}  // namespace emcast::sim
