#pragma once
// The simulation kernel: a virtual clock driving the event queue.
// Components hold a Simulator& and schedule callbacks; there is no global
// state, so many simulations run concurrently on different threads (one
// Simulator per sweep point).
//
// The kernel is parameterised on the event-queue type so the pending-set
// policy can be swapped (heap vs. calendar) without touching components;
// `Simulator` is the engine default — the calendar queue.  The two
// policies execute byte-identical event orders (the (time, seq) contract),
// so the choice is purely a performance knob.

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace emcast::sim {

template <typename Queue>
class BasicSimulator {
 public:
  BasicSimulator() = default;
  BasicSimulator(const BasicSimulator&) = delete;
  BasicSimulator& operator=(const BasicSimulator&) = delete;

  Time now() const { return now_; }

  /// Schedule fn at now()+delay (delay >= 0).  The callable goes straight
  /// into the event queue's slot storage — no temporaries, no allocation.
  template <typename F>
  EventHandle schedule_in(Time delay, F&& fn) {
    // Negated >= so NaN falls through to the throw: `delay < 0.0` is false
    // for NaN, which would otherwise poison now_ + delay and corrupt the
    // pending-set ordering downstream.
    if (!(delay >= 0.0)) {
      throw std::invalid_argument("schedule_in: negative or NaN delay");
    }
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule fn at absolute time t >= now().
  template <typename F>
  EventHandle schedule_at(Time t, F&& fn) {
    if (!(t >= now_)) {  // rejects NaN as well as times in the past
      throw std::invalid_argument("schedule_at: time in the past or NaN");
    }
    return queue_.push(t, std::forward<F>(fn));
  }

  /// Run until the event queue drains or the clock passes `until`.
  /// Returns the number of events executed.
  std::uint64_t run(Time until = kTimeInfinity) {
    stop_requested_ = false;
    std::uint64_t executed = 0;
    while (!stop_requested_ && !queue_.empty()) {
      // next_time() skims cancelled events, so the subsequent pop() finds a
      // live event at the pending-set front without rescanning.
      if (queue_.next_time() > until) break;
      auto fired = queue_.pop();
      assert(fired.time + 1e-12 >= now_ && "event time went backwards");
      now_ = fired.time;
      fired.fn();
      ++executed;
    }
    // Advance the clock to the horizon when we ran out of events before it;
    // callers that measure rates rely on now() == until afterwards.
    if (!stop_requested_ && until != kTimeInfinity && now_ < until &&
        queue_.empty()) {
      now_ = until;
    }
    events_executed_ += executed;
    return executed;
  }

  /// Window-bounded run for the sharded scheduler: execute every event
  /// strictly *before* `bound` and stop, leaving the clock at the last
  /// fired event.  The exclusive bound is what makes conservative windows
  /// airtight — a cross-shard arrival stamped exactly at a window end W
  /// can never race an event this call executes, because nothing at or
  /// past W runs until the next window.  Returns events executed.
  std::uint64_t run_before(Time bound) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.next_time() < bound) {
      auto fired = queue_.pop();
      assert(fired.time + 1e-12 >= now_ && "event time went backwards");
      now_ = fired.time;
      fired.fn();
      ++executed;
    }
    events_executed_ += executed;
    return executed;
  }

  /// Time of the earliest pending event (kTimeInfinity when drained).
  Time next_event_time() { return queue_.next_time(); }

  /// Request run() to return after the current event completes.
  void stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }

 private:
  Queue queue_;
  Time now_ = 0.0;
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
};

/// The engine default: calendar-queue pending set.
using Simulator = BasicSimulator<EventQueue>;
/// Heap-policy kernel, kept for A/B benchmarking and differential tests.
using HeapSimulator = BasicSimulator<HeapEventQueue>;

}  // namespace emcast::sim
