#pragma once
// The simulation kernel: a virtual clock driving the event queue.
// Components hold a Simulator& and schedule callbacks; there is no global
// state, so many simulations run concurrently on different threads (one
// Simulator per sweep point).

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace emcast::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedule fn at now()+delay (delay >= 0).  The callable goes straight
  /// into the event queue's slot storage — no temporaries, no allocation.
  template <typename F>
  EventHandle schedule_in(Time delay, F&& fn) {
    if (delay < 0.0) {
      throw std::invalid_argument("schedule_in: negative delay");
    }
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule fn at absolute time t >= now().
  template <typename F>
  EventHandle schedule_at(Time t, F&& fn) {
    if (t < now_) {
      throw std::invalid_argument("schedule_at: time in the past");
    }
    return queue_.push(t, std::forward<F>(fn));
  }

  /// Run until the event queue drains or the clock passes `until`.
  /// Returns the number of events executed.
  std::uint64_t run(Time until = kTimeInfinity);

  /// Request run() to return after the current event completes.
  void stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace emcast::sim
