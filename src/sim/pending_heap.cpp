#include "sim/pending_heap.hpp"

#include <cstdlib>
#include <cstring>
#include <new>

namespace emcast::sim {

PendingHeap::~PendingHeap() { std::free(heap_); }

void PendingHeap::reserve(std::size_t logical) {
  if (logical <= cap_) return;
  std::size_t cap = cap_ < 64 ? 64 : cap_ * 2;
  if (cap < logical) cap = logical;
  // Physical buffer holds kBase pad entries + cap, rounded up so the byte
  // size is a multiple of the 64-byte alignment; the slack becomes extra
  // capacity.
  std::size_t bytes = (cap + kBase) * sizeof(PendingEntry);
  bytes = (bytes + 63) & ~std::size_t{63};
  auto* fresh = static_cast<PendingEntry*>(std::aligned_alloc(64, bytes));
  if (fresh == nullptr) throw std::bad_alloc();
  if (heap_ == nullptr) {
    std::memset(fresh, 0, kBase * sizeof(PendingEntry));  // pad entries
  } else {
    std::memcpy(fresh, heap_, (kBase + size_) * sizeof(PendingEntry));
    std::free(heap_);
  }
  heap_ = fresh;
  cap_ = bytes / sizeof(PendingEntry) - kBase;
}

void PendingHeap::heapify() {
  // Bottom-up (Floyd): sift interior nodes from the last parent to the
  // root.
  if (size_ <= 1) return;
  const std::size_t last = kBase + size_ - 1;
  for (std::size_t p = last / 4 + 2; p + 1 > kBase; --p) sift_down(p);
}

}  // namespace emcast::sim
