#pragma once
// Calendar-queue pending-set policy: amortised O(1) push/pop over the
// order-preserving integer time image, replacing the O(log n) heap walk on
// the engine's hottest path.
//
// Layout.  The current "year" [year_base, year_end) is split into a
// power-of-two number of equal "day" buckets of 2^day_shift key units
// each.  Bucket b holds exactly the events of day b — there is no mod-N
// wrap, so the first non-empty bucket always holds the global in-year
// minimum and pops stream through the buckets in order.  Events at or
// beyond year_end go to a 4-ary min-heap overflow year (PendingHeap) and
// only re-enter the buckets when the in-year events are exhausted.
//
// Storage.  Bucket membership is an intrusive singly-linked list through a
// node pool (index links, so pool growth never invalidates them); a bucket
// is one 32-bit head word.  A bitmap over the buckets (plus a monotone
// low-water hint) makes find-first-non-empty a word scan.  All arrays are
// retained across rebuilds, so a warmed queue runs allocation-free.
//
// Lazy intra-bucket sorting.  push() prepends in O(1); a bucket is sorted
// (ascending, head = earliest) only when a pop first reaches it, by
// permuting the chain's payloads through a scratch buffer.  A push that
// becomes the new bucket minimum keeps the sorted flag; any other push
// into a sorted bucket just clears it.
//
// Resize / re-aim.  The bucket count tracks the live population
// (grow at load factor 2, shrink at 1/8) and the day width tracks the
// event spacing: at every rebuild the width is the mean key gap over the
// trimmed 90th-percentile span (an nth_element, O(n)), so the bulk of
// the population fits the year while the far-future tail beyond p90
// rides the overflow heap.  A push below year_base re-bases the year
// (full rebuild with a quarter-year of downward slack); a push into an
// empty queue just re-aims the existing year at the new key in O(1).
//
// Determinism.  Pop order is exactly (time_key, seq) regardless of bucket
// geometry: equal keys share a bucket, earlier days live in earlier
// buckets, and the overflow year only drains when the buckets are empty —
// so the heap policy and this policy produce byte-identical event orders.
//
// Size-adaptive small mode.  Below ~1k pending events the per-op bucket
// bookkeeping loses to an L2-resident heap sift (the ~10% small-population
// gap vs. PendingHeap), so the policy runs *population-adaptive*: while
// the pending count stays under kSmallModeMax, every structured entry
// lives in the overflow heap (the PendingHeap policy path) and the bucket
// machinery is never touched; crossing the threshold rebuilds into the
// calendar layout, and draining below kSmallModeMin (wide hysteresis, no
// thrash) collapses back.  The front register works identically in both
// modes, and since the heap pops exact (time_key, seq) order too, mode
// switches are invisible to event ordering.

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/pending_entry.hpp"
#include "sim/pending_heap.hpp"

namespace emcast::sim {

class CalendarPendingSet {
 public:
  CalendarPendingSet() = default;
  CalendarPendingSet(const CalendarPendingSet&) = delete;
  CalendarPendingSet& operator=(const CalendarPendingSet&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push(PendingEntry e);

  /// Insert `count` entries with one front-register settlement and one
  /// bucket-head update per monotone run, instead of per entry — the
  /// batch-schedule fast path (BasicEventQueue::push_batch).
  ///
  /// Precondition: entries carry strictly ascending sequence numbers in
  /// index order (push_batch assigns them), so within any nondecreasing
  /// time_key run the (time_key, seq) order equals the index order.  The
  /// resulting structure pops the exact order a loop of push() calls
  /// would produce.  On a throw (allocation only), a PREFIX of the batch
  /// has been inserted and size() accounts exactly for it.
  void insert_batch(const PendingEntry* entries, std::size_t count);

  /// The global minimum, O(1): it always lives in the front register.
  const PendingEntry& min() {
    assert(size_ != 0 && "min on empty calendar queue");
    return front_;
  }
  PendingEntry pop_min();

  /// Drop every entry but keep all arenas warm (node pool, bucket heads,
  /// bitmap, overflow buffer, scratch): the warm-reuse path of the engine.
  /// The policy returns to its fresh logical state — small mode, no year —
  /// so the day width is re-derived lazily by the next promotion rebuild,
  /// from the *new* run's population, not the old one's.  Telemetry
  /// counters (rebuilds, year advances, mode switches) restart at zero.
  /// Never allocates.
  void clear() noexcept;

  /// Remove every entry for which `dead` holds.  Unlinking preserves the
  /// relative chain order, so sorted buckets stay sorted.
  template <typename Pred>
  void remove_if(Pred dead);

  // -- introspection (tests, zero-allocation proofs) ----------------------
  std::size_t bucket_count() const { return heads_.size(); }
  std::size_t in_bucket_count() const { return in_buckets_; }
  std::size_t overflow_count() const { return overflow_.size(); }
  std::uint64_t rebuild_count() const { return rebuilds_; }
  std::uint64_t year_advance_count() const { return year_advances_; }
  bool small_mode() const { return small_mode_; }
  std::uint64_t mode_switches() const { return mode_switches_; }
  std::uint32_t day_shift() const { return day_shift_; }
  const PendingHeap& overflow() const { return overflow_; }
  const void* pool_data() const { return pool_.data(); }
  std::size_t pool_capacity() const { return pool_.capacity(); }
  std::size_t heads_capacity() const { return heads_.capacity(); }
  std::size_t scratch_capacity() const { return scratch_.capacity(); }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kSortedBit = 1u << 31;
  static constexpr std::uint32_t kIndexMask = kSortedBit - 1;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;
  /// Small-mode hysteresis: heap-only below, calendar above (see header
  /// comment).  The upper bound sits at the measured heap/calendar
  /// crossover; the 4x gap makes threshold churn cost O(n) only once per
  /// quarter-population drain.
  static constexpr std::size_t kSmallModeMax = 1024;
  static constexpr std::size_t kSmallModeMin = 256;
  /// Day widths are capped at 2^47 key units: with <= 2^16 buckets the
  /// year span stays below 2^63 and the shift arithmetic cannot overflow.
  /// (Key spans are wide: the integer time image inflates one double
  /// binade to 2^52 key units, so even a [0, 1000)s horizon spans ~2^56.)
  static constexpr std::uint32_t kMaxDayShift = 47;

  struct Node {
    PendingEntry entry;
    std::uint32_t next;
  };

  std::size_t bucket_of(std::uint64_t key) const {
    std::size_t b = static_cast<std::size_t>((key - year_base_) >> day_shift_);
    // Only reachable when year_end_ saturated at 2^64-1: the last bucket
    // then doubles as an "overflow day", which keeps ordering intact
    // because every clamped key exceeds every key of an earlier bucket.
    const std::size_t mask = heads_.size() - 1;
    return b < mask ? b : mask;
  }

  std::uint32_t alloc_node() {
    if (free_head_ != kNil) {
      const std::uint32_t idx = free_head_;
      free_head_ = pool_[idx].next;
      return idx;
    }
    pool_.push_back(Node{});  // before any linking: strong guarantee
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void free_node(std::uint32_t idx) {
    pool_[idx].next = free_head_;
    free_head_ = idx;
  }

  void link_entry(PendingEntry e);  ///< chain insert, no size_ change
  void insert_structure(PendingEntry e);  ///< bucket/overflow insert
  /// Bulk-insert a nondecreasing run of entries (all >= front_) into the
  /// structure, updating size_ as it goes; the batch fast path.
  void insert_run(const PendingEntry* e, std::size_t m);
  /// Chain `m` already-(time_key, seq)-sorted entries into bucket `b`
  /// with one head read/write.  Nothrow (pool capacity pre-reserved).
  void link_run(std::size_t b, const PendingEntry* e,
                std::size_t m) noexcept;
  PendingEntry structure_pop();  ///< earliest bucket/overflow entry
  void collapse_to_small();  ///< move every bucket entry into the heap
  std::size_t find_first_occupied() const;
  std::size_t locate_min();
  void sort_bucket(std::size_t b);
  void maybe_shrink();
  void advance_year();
  /// Collect everything (plus `extra`, if any), re-derive the bucket count
  /// and day width, and redistribute.  Strong exception guarantee: all
  /// allocation happens before anything is torn down.
  void rebuild(const PendingEntry* extra);

  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;
  std::vector<std::uint32_t> heads_;     ///< node index | kSortedBit, or kNil
  std::vector<std::uint64_t> occupied_;  ///< one bit per bucket
  PendingHeap overflow_;                 ///< keys >= year_end_
  std::vector<PendingEntry> scratch_;    ///< rebuild / sort staging
  std::vector<std::uint32_t> idx_scratch_;

  std::uint64_t year_base_ = 0;
  std::uint64_t year_end_ = 0;
  std::uint32_t day_shift_ = 0;
  std::size_t in_buckets_ = 0;  ///< entries currently in bucket chains
  std::size_t hint_ = 0;        ///< <= index of the first non-empty bucket
  std::size_t size_ = 0;        ///< total entries (front + buckets + overflow)
  /// The global minimum, held outside the buckets (valid iff size_ > 0).
  /// min() is then a register read, and the push/pop/push cycle of a
  /// single self-rescheduling event never touches the buckets at all.
  PendingEntry front_{};
  /// Memo of locate_min()'s last answer: the bucket is still the first
  /// non-empty one and still sorted.  Invalidated by any mutation that
  /// could change the front (push, rebuild, remove_if, emptying pop), so
  /// a next_time()/pop() pair pays for one bucket search, not three.
  static constexpr std::size_t kNoCursor = ~std::size_t{0};
  std::size_t cursor_ = kNoCursor;
  /// Population-adaptive mode (see header comment): structured entries
  /// live in the overflow heap alone until the population earns the
  /// bucket bookkeeping.
  bool small_mode_ = true;
  std::uint64_t mode_switches_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t year_advances_ = 0;
};

// ---- hot path, kept inline so the event loop sees through the calls ----

inline void CalendarPendingSet::link_entry(PendingEntry e) {
  const std::size_t b = bucket_of(e.time_key);
  const std::uint32_t node = alloc_node();
  Node& n = pool_[node];
  n.entry = e;
  const std::uint32_t head = heads_[b];
  if (head == kNil) {
    n.next = kNil;
    heads_[b] = node | kSortedBit;  // a single node is trivially sorted
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  } else {
    const std::uint32_t head_idx = head & kIndexMask;
    n.next = head_idx;
    // Prepending the new bucket minimum keeps a sorted chain sorted; any
    // other prepend leaves the sort to the pop that first needs it.
    const bool stays_sorted =
        (head & kSortedBit) != 0 && entry_before(e, pool_[head_idx].entry);
    heads_[b] = node | (stays_sorted ? kSortedBit : 0u);
  }
  if (b < hint_) hint_ = b;
  ++in_buckets_;
}

inline void CalendarPendingSet::push(PendingEntry e) {
  if (size_ == 0) {
    front_ = e;  // buckets untouched: the empty->one transition is free
    size_ = 1;
    return;
  }
  if (entry_before(e, front_)) {
    // New global minimum: it takes the front register and the old front
    // — necessarily >= every key already structured — goes to a bucket.
    // Structure first: if the insert throws, front_/size_ are untouched.
    insert_structure(front_);
    front_ = e;
  } else {
    insert_structure(e);
  }
  ++size_;
}

inline void CalendarPendingSet::insert_structure(PendingEntry e) {
  cursor_ = kNoCursor;
  if (small_mode_) {
    if (size_ + 1 > kSmallModeMax) [[unlikely]] {
      // The population outgrew the heap's cache residency: promote to
      // the calendar layout (rebuild gathers the heap + e and derives
      // the year geometry from the full population).
      small_mode_ = false;
      ++mode_switches_;
      rebuild(&e);
      return;
    }
    overflow_.push(e);
    return;
  }
  if (in_buckets_ == 0 && overflow_.empty()) [[unlikely]] {
    if (heads_.empty()) {
      rebuild(&e);  // first ever structured entry: allocate the arrays
      return;
    }
    // Empty structure: re-aim the existing year, O(1).  The base is the
    // front register's key — the true global minimum — so keys landing
    // between the front and `e` cannot masquerade as underflows.
    year_base_ = front_.time_key;
    const std::uint64_t span = static_cast<std::uint64_t>(heads_.size())
                               << day_shift_;
    year_end_ = year_base_ > ~std::uint64_t{0} - span ? ~std::uint64_t{0}
                                                      : year_base_ + span;
    hint_ = 0;
    // Fall through to the year_end_ split below: a far key must still go
    // to the overflow heap, or it would pop (from the clamped last
    // bucket) ahead of nearer keys overflowed later.
  } else if ((size_ + 1 > 2 * heads_.size() &&
              heads_.size() < kMaxBuckets) ||
             e.time_key < year_base_) [[unlikely]] {
    rebuild(&e);  // grow, or re-base the year below a record-minimum key
    return;
  }
  if (e.time_key >= year_end_) {
    overflow_.push(e);
    return;
  }
  link_entry(e);
}

inline std::size_t CalendarPendingSet::find_first_occupied() const {
  std::size_t w = hint_ >> 6;
  std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (hint_ & 63));
  while (word == 0) word = occupied_[++w];
  return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
}

inline std::size_t CalendarPendingSet::locate_min() {
  assert(size_ != 0 && "locate_min on empty calendar queue");
  if (cursor_ != kNoCursor) return cursor_;
  for (;;) {
    if (in_buckets_ == 0) [[unlikely]] {
      // Every in-year event fired: slide the year forward over the
      // overflow heap (buckets are already empty — no rebuild).
      advance_year();
      continue;
    }
    const std::size_t b = find_first_occupied();
    hint_ = b;
    if ((heads_[b] & kSortedBit) == 0) [[unlikely]] sort_bucket(b);
    cursor_ = b;
    return b;
  }
}

inline PendingEntry CalendarPendingSet::structure_pop() {
  if (small_mode_) return overflow_.pop_min();
  const std::size_t b = locate_min();
  const std::uint32_t node = heads_[b] & kIndexMask;
  Node& n = pool_[node];
  const PendingEntry e = n.entry;
  if (n.next == kNil) {
    heads_[b] = kNil;
    occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    cursor_ = kNoCursor;  // the front bucket moved past b
  } else {
    heads_[b] = n.next | kSortedBit;  // tail of a sorted chain stays sorted
  }
  free_node(node);
  --in_buckets_;
  return e;
}

inline PendingEntry CalendarPendingSet::pop_min() {
  assert(size_ != 0 && "pop_min on empty calendar queue");
  const PendingEntry e = front_;
  if (--size_ != 0) {
    front_ = structure_pop();
    maybe_shrink();
  }
  return e;
}

inline void CalendarPendingSet::maybe_shrink() {
  if (small_mode_) return;
  if (size_ < kSmallModeMin) [[unlikely]] {
    collapse_to_small();
    return;
  }
  if (heads_.size() > kMinBuckets && size_ < heads_.size() / 8) [[unlikely]] {
    rebuild(nullptr);
  }
}

template <typename Pred>
void CalendarPendingSet::remove_if(Pred dead) {
  cursor_ = kNoCursor;
  for (std::size_t w = 0; w < occupied_.size(); ++w) {
    // (chains first; the front register is settled at the end, when the
    // structure holds only survivors)
    std::uint64_t remaining = occupied_[w];
    while (remaining != 0) {
      const std::size_t bit = static_cast<std::size_t>(
          std::countr_zero(remaining));
      remaining &= remaining - 1;
      const std::size_t b = (w << 6) + bit;
      const std::uint32_t sorted_flag = heads_[b] & kSortedBit;
      std::uint32_t idx = heads_[b] & kIndexMask;
      std::uint32_t survivors = kNil;
      std::uint32_t* prev_next = &survivors;
      while (idx != kNil) {
        const std::uint32_t nxt = pool_[idx].next;
        if (dead(pool_[idx].entry)) {
          free_node(idx);
          --in_buckets_;
          --size_;
        } else {
          *prev_next = idx;
          prev_next = &pool_[idx].next;
        }
        idx = nxt;
      }
      *prev_next = kNil;
      if (survivors == kNil) {
        heads_[b] = kNil;
        occupied_[w] &= ~(std::uint64_t{1} << bit);
      } else {
        heads_[b] = survivors | sorted_flag;
      }
    }
  }
  const std::size_t overflow_before = overflow_.size();
  overflow_.remove_if(dead);
  size_ -= overflow_before - overflow_.size();
  // Settle the front register last, when the structure holds only
  // survivors: a dead front is replaced by the new structured minimum.
  if (size_ != 0 && dead(front_)) {
    if (--size_ != 0) front_ = structure_pop();
  }
  maybe_shrink();
}

}  // namespace emcast::sim
