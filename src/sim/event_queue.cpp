#include "sim/event_queue.hpp"

#include <stdexcept>
#include <string>

namespace emcast::sim {

void EventQueueBase::throw_nonfinite_time() {
  throw std::invalid_argument("EventQueue::push: non-finite time");
}

void EventQueueBase::throw_capacity_exhausted(const char* what) {
  throw std::length_error(std::string("EventQueue: ") + what +
                          " space exhausted");
}

void EventQueueBase::teardown_slots() noexcept {
  // All handles go stale first, so reentrant cancel()/pending() from the
  // capture destructors below are no-ops (and can never trip the
  // compaction hook of a derived class that is already being destroyed).
  for (auto& occupants : occupant_) {
    for (auto& word : occupants) word = kVacantTag | kNoSlot;
  }
  live_count_ = 0;
  dead_pending_ = 0;
  // Destroy the captures now, while the occupant arrays are still alive;
  // the slab destructors later see only empty slots.  (Scheduling into a
  // queue mid-destruction remains unsupported, as documented.)
  for (std::uint32_t i = 0; i < occupant_[0].size(); ++i) {
    compact_fn(i) = nullptr;
  }
  for (std::uint32_t i = 0; i < occupant_[1].size(); ++i) {
    fat_fn(i) = nullptr;
  }
}

void EventQueueBase::reset_slots() noexcept {
  // The two-phase teardown (every handle goes stale before any capture
  // destructor runs) is exactly teardown_slots; then, instead of leaving
  // the arrays behind for the destructor, every slot of each pool is
  // relinked into an ascending free list, so the warmed queue reissues
  // slots in the exact order a fresh queue would first allocate them.
  teardown_slots();
  for (std::size_t pool = 0; pool < 2; ++pool) {
    auto& occupants = occupant_[pool];
    const std::size_t n = occupants.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t next =
          i + 1 < n ? static_cast<std::uint32_t>(i + 1) : kNoSlot;
      occupants[i] = kVacantTag | next;
    }
    free_head_[pool] = n != 0 ? 0 : kNoSlot;
  }
  // next_seq_ is deliberately NOT rewound (epoch safety — see the header).
}

void EventQueueBase::cancel_handle(const EventHandle& h) {
  if (h.queue_ != this || occupant(h.slot_) != h.seq_) {
    return;  // already fired/cancelled (or the slot was recycled)
  }
  const std::uint32_t slot = h.slot_;
  const std::uint32_t index = slot & kPoolMask;
  // Invalidate the occupant word BEFORE touching the capture: relocating
  // a non-trivial capture runs its move constructor and the moved-from
  // destructor, and that user code may cancel this very handle (an RAII
  // timeout guard).  With the occupant already mismatching, the reentrant
  // cancel is a stale-handle no-op.  The slot joins the free list only
  // after the capture is fully destroyed, so a reentrant push cannot
  // grab a slot that is still being torn down.
  occupant(slot) = kVacantTag | kNoSlot;  // vacant, not yet on free list
  --live_count_;
  ++dead_pending_;  // the pending record outlives the slot until popped
  // In-place destroy (InlineFn::reset detaches its vtable before running
  // the destructor, so the capture's teardown code sees an empty slot and
  // may reenter cancel()/push() safely).
  if (slot & kPoolBit) {
    fat_fn(index) = nullptr;
  } else {
    compact_fn(index) = nullptr;
  }
  release_slot(slot);
  // Threshold test inline (dead vs. the floor and the live population, both
  // base-class state); the virtual hop is paid only for actual compactions.
  if (dead_pending_ > kCompactFloor && dead_pending_ > live_count_) {
    maybe_compact();
  }
}

// Anchor the template instantiations the library itself ships, so every
// client does not re-instantiate the full queue.
template class BasicEventQueue<PendingHeap>;
template class BasicEventQueue<CalendarPendingSet>;

}  // namespace emcast::sim
