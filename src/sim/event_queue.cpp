#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace emcast::sim {

EventQueue::~EventQueue() { std::free(heap_); }

void EventQueue::throw_nonfinite_time() {
  throw std::invalid_argument("EventQueue::push: non-finite time");
}

void EventQueue::throw_capacity_exhausted(const char* what) {
  throw std::length_error(std::string("EventQueue: ") + what +
                          " space exhausted");
}

void EventQueue::heap_reserve(std::size_t logical) {
  if (logical <= heap_cap_) return;
  std::size_t cap = heap_cap_ < 64 ? 64 : heap_cap_ * 2;
  if (cap < logical) cap = logical;
  // Physical buffer holds kHeapBase pad entries + cap, rounded up so the
  // byte size is a multiple of the 64-byte alignment; the slack becomes
  // extra capacity.
  std::size_t bytes = (cap + kHeapBase) * sizeof(HeapEntry);
  bytes = (bytes + 63) & ~std::size_t{63};
  auto* fresh = static_cast<HeapEntry*>(std::aligned_alloc(64, bytes));
  if (fresh == nullptr) throw std::bad_alloc();
  if (heap_ == nullptr) {
    std::memset(fresh, 0, kHeapBase * sizeof(HeapEntry));  // pad entries
  } else {
    std::memcpy(fresh, heap_, (kHeapBase + heap_size_) * sizeof(HeapEntry));
    std::free(heap_);
  }
  heap_ = fresh;
  heap_cap_ = bytes / sizeof(HeapEntry) - kHeapBase;
}

void EventQueue::cancel_handle(const EventHandle& h) {
  if (h.queue_ != this || occupant(h.slot_) != h.seq_) {
    return;  // already fired/cancelled (or the slot was recycled)
  }
  const std::uint32_t slot = h.slot_;
  const std::uint32_t index = slot & kPoolMask;
  // Invalidate the occupant word BEFORE touching the capture: relocating
  // a non-trivial capture runs its move constructor and the moved-from
  // destructor, and that user code may cancel this very handle (an RAII
  // timeout guard).  With the occupant already mismatching, the reentrant
  // cancel is a stale-handle no-op.  The slot joins the free list only
  // after the capture is fully destroyed, so a reentrant push cannot
  // grab a slot that is still being torn down.
  occupant(slot) = kVacantTag | kNoSlot;  // vacant, not yet on free list
  --live_count_;
  ++dead_in_heap_;  // the heap record outlives the slot until popped
  // In-place destroy (InlineFn::reset detaches its vtable before running
  // the destructor, so the capture's teardown code sees an empty slot and
  // may reenter cancel()/push() safely).
  if (slot & kPoolBit) {
    fat_fn(index) = nullptr;
  } else {
    compact_fn(index) = nullptr;
  }
  release_slot(slot);
  maybe_compact();
}

void EventQueue::maybe_compact() {
  if (dead_in_heap_ <= kCompactFloor ||
      dead_in_heap_ <= heap_size_ - dead_in_heap_) {
    return;
  }
  HeapEntry* begin = heap_ + kHeapBase;
  HeapEntry* end = begin + heap_size_;
  HeapEntry* kept = std::remove_if(
      begin, end, [this](const HeapEntry& e) { return entry_dead(e); });
  heap_size_ = static_cast<std::size_t>(kept - begin);
  dead_in_heap_ = 0;
  // Re-establish the heap invariant bottom-up (Floyd): sift interior
  // nodes from the last parent down to the root.
  if (heap_size_ > 1) {
    const std::size_t last = kHeapBase + heap_size_ - 1;
    for (std::size_t p = last / 4 + 2; p + 1 > kHeapBase; --p) sift_down(p);
  }
}

}  // namespace emcast::sim
