#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace emcast::sim {

EventHandle EventQueue::push(Time t, EventFn fn) {
  if (!std::isfinite(t)) {
    throw std::invalid_argument("EventQueue::push: non-finite time");
  }
  auto block = std::make_shared<EventHandle::Block>();
  heap_.push_back(Entry{t, next_seq_++, std::move(fn), block});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(std::move(block));
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && heap_.front().block->done) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() {
  drop_dead();
  return heap_.empty();
}

Time EventQueue::next_time() {
  drop_dead();
  return heap_.empty() ? kTimeInfinity : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead();
  assert(!heap_.empty() && "pop on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  e.block->done = true;  // marks "fired" so late cancel() is a no-op
  return Fired{e.time, std::move(e.fn)};
}

}  // namespace emcast::sim
