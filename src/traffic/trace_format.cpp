#include "traffic/trace_format.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace emcast::traffic {
namespace {

// -- primitive codecs -------------------------------------------------------
// LEB128 varints; zigzag for the signed flow/group ids.  These are the
// byte-level contract shared with tools/make_trace.py — change them only
// with a format version bump (the golden-bytes test pins both sides).

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Bounded decode; returns false on overrun or an over-long encoding.
bool get_varint(const std::uint8_t*& pos, const std::uint8_t* end,
                std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos == end) return false;
    const std::uint8_t byte = *pos++;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

// -- TraceWriter ------------------------------------------------------------

void TraceWriter::append(Time t, Bits size, FlowId flow, GroupId group) {
  const std::uint64_t key = sim::time_key(t);
  if (records_ > 0 && key < prev_key_) {
    throw std::invalid_argument(
        "TraceWriter::append: records must be in non-decreasing time order");
  }
  const auto size_image = std::bit_cast<std::uint64_t>(size);
  put_varint(payload_, key - (records_ > 0 ? prev_key_ : 0));
  put_varint(payload_, size_image ^ prev_size_image_);
  put_varint(payload_, zigzag(flow));
  put_varint(payload_, zigzag(group));
  prev_key_ = key;
  prev_size_image_ = size_image;
  ++records_;
}

std::vector<std::uint8_t> TraceWriter::finish() const {
  std::vector<std::uint8_t> out(kTraceHeaderBytes);
  put_u32(out.data(), kTraceMagic);
  put_u16(out.data() + 4, kTraceVersion);
  put_u16(out.data() + 6, 0);  // flags, reserved
  put_u64(out.data() + 8, seed_);
  put_u64(out.data() + 16, fingerprint_);
  put_u64(out.data() + 24, records_);
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

void TraceWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = finish();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    throw std::invalid_argument("TraceWriter: cannot open " + path);
  }
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) {
    throw std::invalid_argument("TraceWriter: short write to " + path);
  }
}

// -- TraceBuffer ------------------------------------------------------------

TraceBuffer::TraceBuffer(std::vector<std::uint8_t> bytes)
    : owned_(std::move(bytes)), data_(owned_.data()), size_(owned_.size()) {
  validate();
}

TraceBuffer TraceBuffer::load(const std::string& path) {
  TraceBuffer buffer;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                          PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        buffer.mapped_ = base;
        buffer.mapped_size_ = static_cast<std::size_t>(st.st_size);
        buffer.data_ = static_cast<const std::uint8_t*>(base);
        buffer.size_ = buffer.mapped_size_;
      }
    }
    ::close(fd);
  }
  if (buffer.data_ == nullptr) {
    // Preloaded-buffer fallback (also the path for empty/unmappable files;
    // a missing file fails here with a clear message).
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      throw std::invalid_argument("TraceBuffer::load: cannot open " + path);
    }
    buffer.owned_.assign(std::istreambuf_iterator<char>(f),
                         std::istreambuf_iterator<char>());
    buffer.data_ = buffer.owned_.data();
    buffer.size_ = buffer.owned_.size();
  }
  try {
    buffer.validate();
  } catch (const std::invalid_argument& err) {
    throw std::invalid_argument(path + ": " + err.what());
  }
  return buffer;
}

TraceBuffer::TraceBuffer(TraceBuffer&& other) noexcept
    : owned_(std::move(other.owned_)),
      mapped_(std::exchange(other.mapped_, nullptr)),
      mapped_size_(std::exchange(other.mapped_size_, 0)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      header_(other.header_) {
  if (mapped_ == nullptr) data_ = owned_.data();
}

TraceBuffer& TraceBuffer::operator=(TraceBuffer&& other) noexcept {
  if (this != &other) {
    if (mapped_ != nullptr) ::munmap(mapped_, mapped_size_);
    owned_ = std::move(other.owned_);
    mapped_ = std::exchange(other.mapped_, nullptr);
    mapped_size_ = std::exchange(other.mapped_size_, 0);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    header_ = other.header_;
    if (mapped_ == nullptr) data_ = owned_.data();
  }
  return *this;
}

TraceBuffer::~TraceBuffer() {
  if (mapped_ != nullptr) ::munmap(mapped_, mapped_size_);
}

void TraceBuffer::validate() {
  if (size_ < kTraceHeaderBytes) {
    throw std::invalid_argument("trace: truncated header");
  }
  if (get_u32(data_) != kTraceMagic) {
    throw std::invalid_argument("trace: bad magic (not an EMCT trace)");
  }
  const std::uint16_t version = get_u16(data_ + 4);
  if (version != kTraceVersion) {
    throw std::invalid_argument("trace: unsupported version " +
                                std::to_string(version));
  }
  header_.seed = get_u64(data_ + 8);
  header_.fingerprint = get_u64(data_ + 16);
  header_.records = get_u64(data_ + 24);

  // One full decode pass: every record must decode inside the payload,
  // times must be non-decreasing, and the payload must end exactly at the
  // last record.  A buffer that survives this is safe for the infallible
  // zero-alloc cursor.
  const std::uint8_t* pos = payload();
  const std::uint8_t* end = pos + payload_size();
  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < header_.records; ++i) {
    std::uint64_t delta = 0, size_x = 0, flow_z = 0, group_z = 0;
    if (!get_varint(pos, end, delta) || !get_varint(pos, end, size_x) ||
        !get_varint(pos, end, flow_z) || !get_varint(pos, end, group_z)) {
      throw std::invalid_argument("trace: truncated record " +
                                  std::to_string(i));
    }
    const std::uint64_t key = prev_key + delta;
    if (key < prev_key) {
      throw std::invalid_argument("trace: time image overflow at record " +
                                  std::to_string(i));
    }
    prev_key = key;
  }
  if (pos != end) {
    throw std::invalid_argument("trace: trailing bytes after last record");
  }
}

// -- TraceCursor ------------------------------------------------------------

TraceRecord TraceCursor::next() {
  // The buffer's load-time validation pass proved every record decodes in
  // bounds, so this is branch-light pointer walking — no failure paths.
  const std::uint8_t* end = buffer_->payload() + buffer_->payload_size();
  std::uint64_t delta = 0, size_x = 0, flow_z = 0, group_z = 0;
  get_varint(pos_, end, delta);
  get_varint(pos_, end, size_x);
  get_varint(pos_, end, flow_z);
  get_varint(pos_, end, group_z);
  prev_key_ += delta;
  prev_size_image_ ^= size_x;
  --remaining_;
  TraceRecord r;
  r.time_key = prev_key_;
  r.size = std::bit_cast<Bits>(prev_size_image_);
  r.flow = static_cast<FlowId>(unzigzag(flow_z));
  r.group = static_cast<GroupId>(unzigzag(group_z));
  return r;
}

}  // namespace emcast::traffic
