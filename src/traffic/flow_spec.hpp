#pragma once
// (σ, ρ) flow descriptors.  A flow with rate function R conforms to
// (σ, ρ) — written R ~ (σ, ρ) in the paper — when the amount of data in any
// interval [t1, t2] is at most σ + ρ·(t2 − t1).  σ is the burst allowance
// in bits, ρ the long-term average rate in bits/s.

#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace emcast::traffic {

struct FlowSpec {
  FlowId id = 0;
  Bits sigma = 0;   ///< burst allowance σ [bits]
  Rate rho = 0;     ///< long-term average rate ρ [bits/s]
  /// Priority class (0 = highest).  The general MUX serves classes
  /// strictly; the (σ, ρ, λ) bank orders its working periods by priority —
  /// the paper's Section VII extension for flows with different
  /// priorities.
  std::uint8_t priority = 0;

  /// Normalise against an output capacity C: σ̂ = σ/C [s], ρ̂ = ρ/C.
  NormalizedSigmaRho normalized(Rate capacity) const {
    if (capacity <= 0) throw std::invalid_argument("normalized: capacity <= 0");
    return {sigma / capacity, rho / capacity};
  }
};

/// Σρᵢ of a flow set.
Rate total_rate(const std::vector<FlowSpec>& flows);

/// Σσᵢ of a flow set.
Bits total_burst(const std::vector<FlowSpec>& flows);

/// The paper's stability condition at an end host: Σρᵢ ≤ C.
bool stable(const std::vector<FlowSpec>& flows, Rate capacity);

/// True when all flows share the same (σ, ρ) (the "homogeneous" case of
/// Theorems 2/4/6/8).
bool homogeneous(const std::vector<FlowSpec>& flows);

/// σ*ᵢ from Theorem 1: σ*ᵢ = ρ̂ᵢ(1−ρ̂ᵢ)·min_j σ̂ⱼ/(ρ̂ⱼ(1−ρ̂ⱼ)), computed in
/// normalised units and returned in bits.  This choice gives every flow the
/// same regulator period (see core/turn_schedule.hpp).
std::vector<Bits> synchronized_bursts(const std::vector<FlowSpec>& flows,
                                      Rate capacity);

}  // namespace emcast::traffic
