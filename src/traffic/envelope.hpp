#pragma once
// Empirical arrival-envelope estimation.  Records the cumulative arrival
// function A(t) of a flow and answers: for a candidate service rate ρ, what
// is the smallest σ with A(t2) − A(t1) ≤ σ + ρ(t2 − t1) for all t1 ≤ t2 —
// i.e. the tightest (σ, ρ) envelope through the observed trace.  The
// adaptive control algorithm uses this to parameterise regulators from
// measurements instead of trusting declared specs.

#include <vector>

#include "util/types.hpp"

namespace emcast::traffic {

class EnvelopeEstimator {
 public:
  /// Record `bits` arriving at time `t` (non-decreasing t).
  void record(Time t, Bits bits);

  std::size_t samples() const { return arrivals_.size(); }
  Bits total_bits() const { return total_bits_; }

  /// Observation window length (last arrival − first arrival).
  Time span() const;

  /// Mean rate over the observation window.
  Rate mean_rate() const;

  /// Tightest σ for a given ρ: max over t of [Â(t) − ρt] − min over t'≤t of
  /// [A(t'−) − ρt'], computed in one pass over the trace.  ρ below the mean
  /// rate gives σ growing with the window (reported as-is).
  Bits sigma_for_rho(Rate rho) const;

  /// Fit a (σ, ρ) pair with ρ = mean_rate × (1 + headroom); headroom keeps
  /// the shaper queue positively recurrent.
  struct Fit {
    Bits sigma;
    Rate rho;
  };
  Fit fit(double headroom = 0.05) const;

 private:
  struct Arrival {
    Time t;
    Bits bits;
  };
  std::vector<Arrival> arrivals_;
  Bits total_bits_ = 0;
};

}  // namespace emcast::traffic
