#include "traffic/mpeg_video_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emcast::traffic {

MpegVideoSource::MpegVideoSource(const MpegVideoConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.mean_rate <= 0) {
    throw std::invalid_argument("MpegVideoSource: mean_rate must be > 0");
  }
  if (config.frame_rate <= 0) {
    throw std::invalid_argument("MpegVideoSource: frame_rate must be > 0");
  }
  if (config.packet_size <= 0) {
    throw std::invalid_argument("MpegVideoSource: packet_size must be > 0");
  }
  if (config.i_ratio <= 0 || config.p_ratio <= 0 || config.b_ratio <= 0) {
    throw std::invalid_argument("MpegVideoSource: frame ratios must be > 0");
  }
  frame_interval_ = 1.0 / config.frame_rate;
  // Mean bits per frame = rate / fps; ratio mass of one GoP:
  //   1×I + 3×P + 8×B  =  i + 3p + 8b   (in ratio units)
  const double gop_mass =
      config.i_ratio + 3.0 * config.p_ratio + 8.0 * config.b_ratio;
  const Bits mean_frame = config.mean_rate / config.frame_rate;
  unit_size_ = mean_frame * static_cast<double>(kGop.size()) / gop_mass;
}

Bits MpegVideoSource::mean_frame_size(char type) const {
  switch (type) {
    case 'I': return unit_size_ * config_.i_ratio;
    case 'P': return unit_size_ * config_.p_ratio;
    case 'B': return unit_size_ * config_.b_ratio;
    default: throw std::invalid_argument("mean_frame_size: bad type");
  }
}

Bits MpegVideoSource::nominal_burst() const {
  // The binding envelope constraint is the instantaneous burst of the
  // largest possible frame (a whole frame is handed to the network at one
  // instant): σ ≥ max I-frame size.  Frame sizes are clamped to
  // mean·(1 ± 2cv) in emit_frame(), so this is a true bound.
  return mean_frame_size('I') * (1.0 + 2.0 * config_.frame_cv) +
         config_.packet_size;
}

void MpegVideoSource::start(sim::SimContext ctx, PacketSink sink, Time until) {
  sink_ = std::move(sink);
  // Random GoP phase so concurrent flows do not lock-step their I-frames.
  gop_position_ = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(kGop.size()) - 1));
  const Time phase = rng_.uniform(0.0, frame_interval_);
  schedule_train(ctx, ctx.now() + phase, until);
}

void MpegVideoSource::schedule_train(sim::SimContext ctx, Time first,
                                     Time until) {
  // The next `batch` frame ticks in one calendar touch.  Tick times
  // accumulate sequentially (t_{n+1} = t_n + frame_interval), matching
  // the per-event chain bit for bit; frame sizes still draw from the RNG
  // at fire time, in frame order, so the sample sequence is unchanged.
  constexpr std::size_t kMaxTrain = 64;
  const std::size_t m = std::clamp<std::size_t>(config_.batch, 1, kMaxTrain);
  Time times[kMaxTrain];
  times[0] = first;
  for (std::size_t i = 1; i < m; ++i) {
    times[i] = times[i - 1] + frame_interval_;
  }
  ctx.schedule_batch(times, m, [this, ctx, until, m](std::size_t i) {
    const bool last = i + 1 == m;
    return [this, ctx, until, last] { emit_frame(ctx, until, last); };
  });
}

void MpegVideoSource::emit_frame(sim::SimContext ctx, Time until, bool last) {
  if (ctx.now() > until) return;
  const char type = kGop[gop_position_];
  gop_position_ = (gop_position_ + 1) % kGop.size();

  const Bits mean_size = mean_frame_size(type);
  // Clamped lognormal: bounded bursts keep the flow conformant with the
  // declared (σ, ρ) envelope (see nominal_burst()).
  const Bits frame_bits =
      std::clamp(rng_.lognormal_mean_cv(mean_size, config_.frame_cv),
                 mean_size * std::max(0.0, 1.0 - 2.0 * config_.frame_cv),
                 mean_size * (1.0 + 2.0 * config_.frame_cv));
  // Packetise: full packets plus one remainder packet.
  auto remaining = frame_bits;
  while (remaining > 0) {
    sim::Packet p;
    p.id = ids_.next();
    p.flow = config_.flow;
    p.group = config_.group;
    p.size = std::min(remaining, config_.packet_size);
    p.created = ctx.now();
    p.hop_arrival = ctx.now();
    remaining -= p.size;
    sink_(std::move(p));
  }
  if (last) schedule_train(ctx, ctx.now() + frame_interval_, until);
}

}  // namespace emcast::traffic
