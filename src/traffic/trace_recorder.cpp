#include "traffic/trace_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace emcast::traffic {

TraceRecorder::TraceRecorder(std::size_t lanes)
    : lanes_(std::max<std::size_t>(1, lanes)) {}

void TraceRecorder::reserve(std::size_t records_per_lane) {
  for (auto& lane : lanes_) lane.reserve(records_per_lane);
}

void TraceRecorder::record(std::size_t lane, Time t, const sim::Packet& p) {
  if (lane >= lanes_.size()) {
    throw std::invalid_argument("TraceRecorder::record: lane out of range");
  }
  lanes_[lane].push_back(Raw{sim::time_key(t), p.size, p.flow, p.group});
}

std::uint64_t TraceRecorder::records() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane.size();
  return n;
}

std::vector<std::uint8_t> TraceRecorder::bytes() const {
  // K-way merge by (time_key, lane): each lane is already time-sorted
  // (per-lane capture follows that lane's event order), so one cursor per
  // lane suffices and the result is deterministic for any thread
  // interleaving of the recording run.
  std::vector<std::size_t> cursor(lanes_.size(), 0);
  TraceWriter writer(seed_, fingerprint_);
  const std::uint64_t total = records();
  for (std::uint64_t n = 0; n < total; ++n) {
    std::size_t best = lanes_.size();
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      if (cursor[l] >= lanes_[l].size()) continue;
      if (best == lanes_.size() ||
          lanes_[l][cursor[l]].time_key < lanes_[best][cursor[best]].time_key) {
        best = l;
      }
    }
    const Raw& r = lanes_[best][cursor[best]++];
    writer.append(sim::key_time(r.time_key), r.size, r.flow, r.group);
  }
  return writer.finish();
}

void TraceRecorder::write_file(const std::string& path) const {
  // A trace's on-disk form and its in-memory form are the same bytes.
  const std::vector<std::uint8_t> data = bytes();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    throw std::invalid_argument("TraceRecorder: cannot open " + path);
  }
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) {
    throw std::invalid_argument("TraceRecorder: short write to " + path);
  }
}

}  // namespace emcast::traffic
