#include "traffic/trace_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace emcast::traffic {

TraceRecorder::TraceRecorder(std::size_t lanes)
    : lanes_(std::max<std::size_t>(1, lanes)) {}

TraceRecorder::~TraceRecorder() {
  for (Spill& s : spills_) {
    if (s.path.empty()) continue;
    s.out.close();
    std::remove(s.path.c_str());  // best effort; litter is the only failure
  }
}

void TraceRecorder::reserve(std::size_t records_per_lane) {
  for (auto& lane : lanes_) lane.reserve(records_per_lane);
}

void TraceRecorder::enable_spill(const std::string& dir,
                                 std::size_t threshold_records) {
  if (records() > 0) {
    throw std::logic_error(
        "TraceRecorder::enable_spill: must be called before recording");
  }
  if (threshold_records == 0) {
    throw std::invalid_argument(
        "TraceRecorder::enable_spill: threshold must be positive");
  }
  spill_dir_ = dir;
  spill_threshold_ = threshold_records;
  spills_ = std::vector<Spill>(lanes_.size());
}

void TraceRecorder::flush_lane(std::size_t lane) {
  Spill& s = spills_[lane];
  if (s.path.empty()) {
    // Globally unique file names: recorders may share a spill directory.
    static std::atomic<std::uint64_t> file_counter{0};
    s.path = spill_dir_ + "/emcast_spill_" +
             std::to_string(file_counter.fetch_add(1)) + "_lane" +
             std::to_string(lane) + ".bin";
    s.out.open(s.path, std::ios::binary | std::ios::trunc);
    if (!s.out) {
      throw std::invalid_argument("TraceRecorder: cannot open spill file " +
                                  s.path);
    }
  }
  std::vector<Raw>& v = lanes_[lane];
  s.out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(Raw)));
  // Push through to the OS now so bytes() can read the file back through
  // an independent ifstream while this handle stays open for appends.
  s.out.flush();
  if (!s.out) {
    throw std::runtime_error("TraceRecorder: spill write failed: " + s.path);
  }
  s.spilled += v.size();
  v.clear();  // capacity kept — the lane arena is recycled, not freed
}

void TraceRecorder::record(std::size_t lane, Time t, const sim::Packet& p) {
  if (lane >= lanes_.size()) {
    throw std::invalid_argument("TraceRecorder::record: lane out of range");
  }
  lanes_[lane].push_back(Raw{sim::time_key(t), p.size, p.flow, p.group});
  if (spill_threshold_ != 0 && lanes_[lane].size() >= spill_threshold_) {
    flush_lane(lane);
  }
}

std::uint64_t TraceRecorder::records() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane.size();
  for (const auto& s : spills_) n += s.spilled;
  return n;
}

std::uint64_t TraceRecorder::records_spilled() const {
  std::uint64_t n = 0;
  for (const auto& s : spills_) n += s.spilled;
  return n;
}

std::vector<std::uint8_t> TraceRecorder::bytes() const {
  // K-way merge by (time_key, lane): each lane is already time-sorted
  // (per-lane capture follows that lane's event order), so one cursor per
  // lane suffices and the result is deterministic for any thread
  // interleaving of the recording run.  A lane's logical stream is its
  // spilled prefix (read back through a bounded buffer) followed by the
  // in-memory tail, so spilled and unspilled recorders serialise the same
  // captures to the same bytes.
  constexpr std::size_t kReadChunk = 4096;
  struct Cursor {
    std::ifstream in;
    std::uint64_t remaining = 0;  ///< spilled records not yet read back
    std::vector<Raw> buf;
    std::size_t pos = 0;
    const std::vector<Raw>* tail = nullptr;
    std::size_t tail_pos = 0;
  };
  std::vector<Cursor> cur(lanes_.size());
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    cur[l].tail = &lanes_[l];
    if (l < spills_.size() && spills_[l].spilled > 0) {
      cur[l].in.open(spills_[l].path, std::ios::binary);
      if (!cur[l].in) {
        throw std::runtime_error("TraceRecorder: cannot reopen spill file " +
                                 spills_[l].path);
      }
      cur[l].remaining = spills_[l].spilled;
    }
  }
  auto head = [&](Cursor& c) -> const Raw* {
    if (c.pos == c.buf.size() && c.remaining > 0) {
      const auto m = static_cast<std::size_t>(
          std::min<std::uint64_t>(kReadChunk, c.remaining));
      c.buf.resize(m);
      c.in.read(reinterpret_cast<char*>(c.buf.data()),
                static_cast<std::streamsize>(m * sizeof(Raw)));
      if (!c.in) {
        throw std::runtime_error("TraceRecorder: spill read failed");
      }
      c.remaining -= m;
      c.pos = 0;
    }
    if (c.pos < c.buf.size()) return &c.buf[c.pos];
    if (c.tail_pos < c.tail->size()) return &(*c.tail)[c.tail_pos];
    return nullptr;
  };
  auto advance = [&](Cursor& c) {
    if (c.pos < c.buf.size()) {
      ++c.pos;
    } else {
      ++c.tail_pos;
    }
  };

  TraceWriter writer(seed_, fingerprint_);
  const std::uint64_t total = records();
  for (std::uint64_t n = 0; n < total; ++n) {
    std::size_t best = lanes_.size();
    const Raw* best_raw = nullptr;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      const Raw* r = head(cur[l]);
      if (r == nullptr) continue;
      if (best_raw == nullptr || r->time_key < best_raw->time_key) {
        best = l;
        best_raw = r;
      }
    }
    writer.append(sim::key_time(best_raw->time_key), best_raw->size,
                  best_raw->flow, best_raw->group);
    advance(cur[best]);
  }
  return writer.finish();
}

void TraceRecorder::write_file(const std::string& path) const {
  // A trace's on-disk form and its in-memory form are the same bytes.
  const std::vector<std::uint8_t> data = bytes();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    throw std::invalid_argument("TraceRecorder: cannot open " + path);
  }
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) {
    throw std::invalid_argument("TraceRecorder: short write to " + path);
  }
}

}  // namespace emcast::traffic
