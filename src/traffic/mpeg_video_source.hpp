#pragma once
// VBR MPEG-1 video: GoP-structured frame generator.  Frames arrive at the
// frame rate; each frame is handed to the network as a burst of packets at
// the frame instant.  Frame sizes follow the I/P/B pattern with lognormal
// per-frame variation, scaled so the long-term mean equals `mean_rate`
// (1.5 Mbit/s MPEG-1 in the paper).
//
// GoP pattern (N=12, M=3): I B B P B B P B B P B B
// Size ratios I:P:B default to 5:3:1, the canonical MPEG-1 profile.
//
// σ analysis: the largest excess over the mean-rate line happens at an
// I-frame arrival on top of a partially-drained GoP; we expose
// (max I-frame size − mean frame size) + one P-frame excess as σ.

#include <array>

#include "traffic/source.hpp"
#include "util/rng.hpp"

namespace emcast::traffic {

struct MpegVideoConfig {
  Rate mean_rate = mbps(1.5);
  double frame_rate = 25.0;     ///< frames/s
  double i_ratio = 5.0;         ///< I:P:B mean size ratios
  double p_ratio = 3.0;
  double b_ratio = 1.0;
  double frame_cv = 0.25;       ///< lognormal coefficient of variation
  Bits packet_size = bytes(1052);
  FlowId flow = 0;
  GroupId group = -1;
  std::uint64_t seed = 1;
  /// Frame ticks scheduled per schedule_batch call (clamped to [1, 64]).
  /// Purely a scheduling amortisation: frame instants, RNG draws and
  /// packets are bit-identical for every value.
  std::size_t batch = 16;
};

class MpegVideoSource final : public Source {
 public:
  explicit MpegVideoSource(const MpegVideoConfig& config);

  void start(sim::SimContext ctx, PacketSink sink, Time until) override;
  Rate mean_rate() const override { return config_.mean_rate; }
  Bits nominal_burst() const override;

  /// Mean size of frame type 'I'/'P'/'B' in bits (before variation).
  Bits mean_frame_size(char type) const;

 private:
  void schedule_train(sim::SimContext ctx, Time first, Time until);
  void emit_frame(sim::SimContext ctx, Time until, bool last);

  static constexpr std::array<char, 12> kGop = {'I', 'B', 'B', 'P', 'B', 'B',
                                                'P', 'B', 'B', 'P', 'B', 'B'};

  MpegVideoConfig config_;
  Time frame_interval_;
  Bits unit_size_;   ///< bits per "ratio unit": B-frame mean size
  std::size_t gop_position_ = 0;
  PacketSink sink_;
  util::Rng rng_;
  sim::PacketIdAllocator ids_;
};

}  // namespace emcast::traffic
