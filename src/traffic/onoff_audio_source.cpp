#include "traffic/onoff_audio_source.hpp"

#include <stdexcept>

namespace emcast::traffic {

OnOffAudioSource::OnOffAudioSource(const OnOffAudioConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.mean_rate <= 0) {
    throw std::invalid_argument("OnOffAudioSource: mean_rate must be > 0");
  }
  if (config.packet_size <= 0) {
    throw std::invalid_argument("OnOffAudioSource: packet_size must be > 0");
  }
  if (config.mean_on <= 0) {
    throw std::invalid_argument("OnOffAudioSource: mean_on must be > 0");
  }
  if (config.mean_off < 0) {
    throw std::invalid_argument("OnOffAudioSource: mean_off must be >= 0");
  }
  const double duty = config.mean_on / (config.mean_on + config.mean_off);
  peak_rate_ = config.mean_rate / duty;
  packet_interval_ = config.packet_size / peak_rate_;
}

Bits OnOffAudioSource::nominal_burst() const {
  const Bits spurt_excess =
      (peak_rate_ - config_.mean_rate) * 1.5 * config_.mean_on;
  return spurt_excess + config_.packet_size;
}

void OnOffAudioSource::start(sim::SimContext ctx, PacketSink sink,
                             Time until) {
  sink_ = std::move(sink);
  // Random initial silence decorrelates flows sharing a seed base.
  const Time first = rng_.exponential(config_.mean_off);
  ctx.schedule_in(first, [this, ctx, until] { begin_talkspurt(ctx, until); });
}

void OnOffAudioSource::begin_talkspurt(sim::SimContext ctx, Time until) {
  if (ctx.now() > until) return;
  // Bounded spurt: uniform in [0.5, 1.5]·mean_on (see header).
  const Time spurt =
      rng_.uniform(0.5 * config_.mean_on, 1.5 * config_.mean_on);
  last_spurt_length_ = spurt;
  emit(ctx, ctx.now() + spurt, until);
}

void OnOffAudioSource::emit(sim::SimContext ctx, Time spurt_end, Time until) {
  if (ctx.now() > until) return;
  if (ctx.now() >= spurt_end) {
    // Silence proportional to the spurt just finished (± duty_jitter):
    // every on/off cycle then has a near-nominal duty cycle, so the
    // long-window rate stays close to the mean and the flow conforms to
    // its (σ, ρ) envelope instead of random-walking above it.
    const double ratio = config_.mean_off / config_.mean_on;
    const Time silence =
        last_spurt_length_ * ratio *
        rng_.uniform(1.0 - config_.duty_jitter, 1.0 + config_.duty_jitter);
    ctx.schedule_in(silence,
                    [this, ctx, until] { begin_talkspurt(ctx, until); });
    return;
  }
  sim::Packet p;
  p.id = ids_.next();
  p.flow = config_.flow;
  p.group = config_.group;
  p.size = config_.packet_size;
  p.created = ctx.now();
  p.hop_arrival = ctx.now();
  sink_(std::move(p));
  ctx.schedule_in(packet_interval_, [this, ctx, spurt_end, until] {
    emit(ctx, spurt_end, until);
  });
}

}  // namespace emcast::traffic
