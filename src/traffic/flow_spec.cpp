#include "traffic/flow_spec.hpp"

#include <algorithm>
#include <cmath>

namespace emcast::traffic {

Rate total_rate(const std::vector<FlowSpec>& flows) {
  Rate sum = 0;
  for (const auto& f : flows) sum += f.rho;
  return sum;
}

Bits total_burst(const std::vector<FlowSpec>& flows) {
  Bits sum = 0;
  for (const auto& f : flows) sum += f.sigma;
  return sum;
}

bool stable(const std::vector<FlowSpec>& flows, Rate capacity) {
  return total_rate(flows) <= capacity;
}

bool homogeneous(const std::vector<FlowSpec>& flows) {
  if (flows.size() < 2) return true;
  return std::all_of(flows.begin(), flows.end(), [&](const FlowSpec& f) {
    return f.sigma == flows.front().sigma && f.rho == flows.front().rho;
  });
}

std::vector<Bits> synchronized_bursts(const std::vector<FlowSpec>& flows,
                                      Rate capacity) {
  if (flows.empty()) return {};
  // period_j = σ̂ⱼ / (ρ̂ⱼ(1−ρ̂ⱼ)) in seconds; the common period is the min.
  double min_period = kTimeInfinity;
  for (const auto& f : flows) {
    const auto [sig, rho] = f.normalized(capacity);
    if (rho <= 0.0 || rho >= 1.0) {
      throw std::invalid_argument("synchronized_bursts: ρ̂ must be in (0,1)");
    }
    min_period = std::min(min_period, sig / (rho * (1.0 - rho)));
  }
  std::vector<Bits> result;
  result.reserve(flows.size());
  for (const auto& f : flows) {
    const auto [sig, rho] = f.normalized(capacity);
    (void)sig;
    // σ̂*ᵢ = ρ̂ᵢ(1−ρ̂ᵢ)·P, back to bits via ×C.
    result.push_back(rho * (1.0 - rho) * min_period * capacity);
  }
  return result;
}

}  // namespace emcast::traffic
