#pragma once
// Source-boundary trace capture.  A TraceRecorder sits inside the sink a
// live traffic source emits into and remembers every packet's (time, size,
// flow, group); finish() merges the capture into one serialised trace a
// traffic::TraceSource can replay.
//
// Lanes.  A multigroup run has one source per group, each owned by the
// shard of its root host, so captures from different sources may happen on
// different worker threads.  The recorder therefore records into per-lane
// arenas (lane = group), which are entirely independent — no locks, no
// sharing — and only finish()/bytes() (called after the run, single
// threaded) merges the lanes into the global non-decreasing time order the
// format requires.  Equal-time records keep lane order (lower lane first),
// and within a lane the capture order, so the merge is a pure function of
// the recorded set.
//
// Recording is off the zero-alloc contract: lanes grow amortised like any
// measurement vector (reserve() if it matters).  *Replay* is the hot path;
// see trace_source.hpp.
//
// Spilling.  At 10^5+ hosts a run emits far more records than RAM should
// hold, so a recorder can be given a spill directory: once a lane's
// resident vector reaches the threshold it is appended (raw 24-byte
// records, already time-sorted) to that lane's spill file and the vector
// is recycled.  bytes() then k-way merges per-lane streams that read the
// spilled chunks back through a small bounded buffer before draining the
// in-memory tail — peak memory is O(lanes * threshold), independent of
// the total record count, and the output is byte-identical to the
// unspilled recorder over the same captures.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "traffic/trace_format.hpp"
#include "util/types.hpp"

namespace emcast::traffic {

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t lanes = 1);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  TraceRecorder(TraceRecorder&&) = default;
  TraceRecorder& operator=(TraceRecorder&&) = default;

  /// Provenance stamped into the header at finish().
  void set_identity(std::uint64_t seed, std::uint64_t fingerprint) {
    seed_ = seed;
    fingerprint_ = fingerprint;
  }

  std::size_t lanes() const { return lanes_.size(); }

  /// Pre-size every lane (optional; recording stays correct without).
  void reserve(std::size_t records_per_lane);

  /// Bound resident memory: once a lane holds `threshold_records` it is
  /// appended to its spill file under `dir` (created per lane, removed in
  /// the destructor) and recycled.  Must be called before the first
  /// record(); lanes spill independently, so the per-lane thread contract
  /// is unchanged.  bytes()/finish() transparently merge spilled chunks
  /// with the in-memory tails — same output as an unspilled recorder.
  void enable_spill(const std::string& dir,
                    std::size_t threshold_records = 1u << 20);

  bool spill_enabled() const { return spill_threshold_ > 0; }
  std::uint64_t records_spilled() const;

  /// Capture one emission on `lane` at simulated time `t`.  Lanes must
  /// only ever be fed from one thread each; distinct lanes are safe
  /// concurrently.  Time must be non-decreasing per lane (sources emit in
  /// their own event order, so this holds by construction).
  void record(std::size_t lane, Time t, const sim::Packet& p);

  std::uint64_t records() const;

  /// Merge every lane into the serialised trace bytes (header included).
  std::vector<std::uint8_t> bytes() const;

  /// bytes() adopted into a validated, replayable buffer.
  TraceBuffer finish() const { return TraceBuffer(bytes()); }

  void write_file(const std::string& path) const;

 private:
  struct Raw {
    std::uint64_t time_key;
    Bits size;
    FlowId flow;
    GroupId group;
  };
  /// Per-lane spill bookkeeping.  `path` is empty until the lane's first
  /// flush; `spilled` counts records already on disk (time-sorted, since
  /// flushes preserve capture order).
  struct Spill {
    std::string path;
    std::ofstream out;
    std::uint64_t spilled = 0;
  };
  void flush_lane(std::size_t lane);

  std::vector<std::vector<Raw>> lanes_;
  std::vector<Spill> spills_;   ///< empty unless enable_spill() was called
  std::string spill_dir_;
  std::size_t spill_threshold_ = 0;  ///< 0 = spilling disabled
  std::uint64_t seed_ = 0;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace emcast::traffic
