#pragma once
// Constant-bit-rate source: fixed-size packets on a fixed interval, with an
// optional start phase.  The degenerate (σ ≈ one packet) case; used by
// tests as the analytically-predictable baseline.

#include "traffic/source.hpp"
#include "util/types.hpp"

namespace emcast::traffic {

struct CbrConfig {
  Rate rate = kbps(64);        ///< bits/s
  Bits packet_size = bytes(160);
  Time phase = 0.0;            ///< first packet offset
  FlowId flow = 0;
  GroupId group = -1;
  /// Tick events scheduled per schedule_batch call (clamped to [1, 64]).
  /// Purely a scheduling amortisation: emission instants and packets are
  /// bit-identical for every value.
  std::size_t batch = 16;
};

class CbrSource final : public Source {
 public:
  explicit CbrSource(const CbrConfig& config);

  void start(sim::SimContext ctx, PacketSink sink, Time until) override;
  Rate mean_rate() const override { return config_.rate; }
  Bits nominal_burst() const override { return config_.packet_size; }

 private:
  void schedule_train(sim::SimContext ctx, Time first, Time until);
  void emit(sim::SimContext ctx, Time until, bool last);

  CbrConfig config_;
  Time interval_;
  PacketSink sink_;
  sim::PacketIdAllocator ids_;
};

}  // namespace emcast::traffic
