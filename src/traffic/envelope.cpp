#include "traffic/envelope.hpp"

#include <algorithm>
#include <stdexcept>

namespace emcast::traffic {

void EnvelopeEstimator::record(Time t, Bits bits) {
  if (!arrivals_.empty() && t < arrivals_.back().t) {
    throw std::invalid_argument("EnvelopeEstimator: time went backwards");
  }
  if (bits < 0) throw std::invalid_argument("EnvelopeEstimator: bits < 0");
  arrivals_.push_back({t, bits});
  total_bits_ += bits;
}

Time EnvelopeEstimator::span() const {
  if (arrivals_.size() < 2) return 0.0;
  return arrivals_.back().t - arrivals_.front().t;
}

Rate EnvelopeEstimator::mean_rate() const {
  const Time s = span();
  return s > 0.0 ? total_bits_ / s : 0.0;
}

Bits EnvelopeEstimator::sigma_for_rho(Rate rho) const {
  // σ(ρ) = max_{t1 ≤ t2} [A(t2) − A(t1⁻) − ρ(t2 − t1)]
  //      = max_t [Acum(t) − ρt  −  min_{t' ≤ t} (Acum(t'⁻) − ρt')]
  // where Acum(t) includes the arrival at t and Acum(t'⁻) excludes it
  // (a burst arriving at a single instant must fit within σ).
  Bits best = 0;
  Bits cum = 0;
  double min_deficit = 0.0;  // min over prefixes of (cum_before − ρ·t)
  bool first = true;
  Time t0 = 0;
  for (const auto& a : arrivals_) {
    if (first) {
      t0 = a.t;
      first = false;
    }
    const Time t = a.t - t0;
    const double before = cum - rho * t;
    min_deficit = std::min(min_deficit, before);
    cum += a.bits;
    const double after = cum - rho * t;
    best = std::max(best, after - min_deficit);
  }
  return best;
}

EnvelopeEstimator::Fit EnvelopeEstimator::fit(double headroom) const {
  const Rate rho = mean_rate() * (1.0 + headroom);
  return Fit{sigma_for_rho(rho), rho};
}

}  // namespace emcast::traffic
