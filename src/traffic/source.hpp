#pragma once
// Traffic source interface.  A source emits packets into a sink callback on
// its own schedule; arrivals at the same instant model an application-layer
// burst (e.g. one video frame handed to the network at once) that the
// downstream regulator/link serialises.

#include "sim/context.hpp"
#include "sim/packet.hpp"
#include "traffic/flow_spec.hpp"
#include "util/types.hpp"

namespace emcast::traffic {

/// Non-allocating sink: the same inline-capture callback type the per-hop
/// pipeline uses (sim::PacketFn, 56-byte capture bound).  Sinks capture a
/// few pointers/indices; bigger state belongs behind a pointer.  Move-only
/// — a source takes ownership of its sink at start().
using PacketSink = sim::PacketFn;

class Source {
 public:
  virtual ~Source() = default;

  /// Begin emitting into `sink` from ctx.now() until `until`.  `ctx` is
  /// the engine-agnostic kernel handle (a plain Simulator converts
  /// implicitly); in a sharded simulation it is the context of the shard
  /// owning the source's host, so all emission events stay shard-local.
  virtual void start(sim::SimContext ctx, PacketSink sink, Time until) = 0;

  /// Long-term average rate ρ of the model [bits/s].
  virtual Rate mean_rate() const = 0;

  /// Model-derived burst allowance σ [bits]: the largest excess over the
  /// mean-rate line the model can produce (talkspurt / GoP analysis).
  virtual Bits nominal_burst() const = 0;

  /// Convenience (σ, ρ) descriptor for the regulators.
  FlowSpec spec(FlowId id) const {
    return FlowSpec{id, nominal_burst(), mean_rate()};
  }
};

}  // namespace emcast::traffic
