#pragma once
// Compact binary workload traces — the record/compress/replay currency of
// the trace-driven sources (see docs/workloads.md for the full spec).
//
// A trace is a fixed-width little-endian header followed by delta/varint
// packet records:
//
//   header (32 bytes):  magic "EMCT" (u32) | version (u16) | flags (u16) |
//                       seed (u64) | config fingerprint (u64) |
//                       record count (u64)
//   record (varints):   Δ time image | size image ⊕ previous | zigzag flow |
//                       zigzag group
//
// Times are stored through sim::time_key — the order-preserving integer
// image of the double the event engine itself sorts by — so a decoded
// emission time is the *bit-identical* double that was recorded: replaying
// a trace schedules the exact float operands the live run scheduled, which
// is what makes recorded-then-replayed runs byte-identical (the
// determinism contract, guarantee (3) in docs/architecture.md).  Packet
// sizes are doubles too (fluid-model bits); their images are XOR-delta
// encoded, so the common fixed-size case costs one byte per record.
//
// Malformed input (bad magic, unknown version, truncated header, truncated
// or trailing record bytes, non-monotone time) is rejected with
// std::invalid_argument at load/append time — a TraceBuffer that
// constructed successfully decodes cleanly, so the zero-alloc replay
// cursor never needs to re-validate on the hot path.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/pending_entry.hpp"
#include "util/types.hpp"

namespace emcast::traffic {

inline constexpr std::uint32_t kTraceMagic = 0x54434D45u;  // "EMCT" LE
inline constexpr std::uint16_t kTraceVersion = 1;
inline constexpr std::size_t kTraceHeaderBytes = 32;

/// Decoded header fields (the magic/version are validated, not stored).
struct TraceHeader {
  std::uint64_t seed = 0;         ///< generating seed (provenance)
  std::uint64_t fingerprint = 0;  ///< generating-config fingerprint
  std::uint64_t records = 0;      ///< packet-record count
};

/// One decoded packet record.
struct TraceRecord {
  std::uint64_t time_key = 0;  ///< sim::time_key image of the emission time
  Bits size = 0;
  FlowId flow = -1;
  GroupId group = -1;

  Time time() const { return sim::key_time(time_key); }
};

/// FNV-1a accumulation for the header's config fingerprint: start from
/// trace_fingerprint_seed() and mix each 64-bit knob image in turn.
inline constexpr std::uint64_t trace_fingerprint_seed() {
  return 14695981039346656037ULL;
}
inline constexpr std::uint64_t trace_fingerprint_mix(std::uint64_t h,
                                                     std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * 1099511628211ULL;
  }
  return h;
}

/// Streaming encoder: append records in non-decreasing time order, then
/// finish() into the serialised bytes (or write_file()).  Appending is
/// amortised-allocating (a growing byte vector) — recording a live run is
/// not on the zero-alloc contract, replaying one is.
class TraceWriter {
 public:
  explicit TraceWriter(std::uint64_t seed = 0, std::uint64_t fingerprint = 0)
      : seed_(seed), fingerprint_(fingerprint) {}

  void set_identity(std::uint64_t seed, std::uint64_t fingerprint) {
    seed_ = seed;
    fingerprint_ = fingerprint;
  }

  /// Append one record.  Throws std::invalid_argument if `t` precedes the
  /// previous record's time (the delta encoding is unsigned by design: a
  /// trace is a timeline, not a bag).
  void append(Time t, Bits size, FlowId flow, GroupId group);

  std::uint64_t records() const { return records_; }

  /// Header + payload as one byte vector.  The writer stays appendable:
  /// finish() may be called again after more appends.
  std::vector<std::uint8_t> finish() const;

  void write_file(const std::string& path) const;

 private:
  std::uint64_t seed_;
  std::uint64_t fingerprint_;
  std::uint64_t records_ = 0;
  std::uint64_t prev_key_ = 0;
  std::uint64_t prev_size_image_ = 0;
  std::vector<std::uint8_t> payload_;
};

/// An immutable, validated trace: owns its bytes (preloaded buffer) or a
/// read-only mmap of the file.  Construction validates the header and
/// walks every record once — size monotonicity of the decode cursor,
/// exact record count, no trailing bytes — so cursors over a constructed
/// buffer are infallible and allocation-free.
class TraceBuffer {
 public:
  /// Validate and adopt serialised bytes (e.g. TraceWriter::finish()).
  explicit TraceBuffer(std::vector<std::uint8_t> bytes);

  /// Load a trace file: mmap'd read-only when the platform allows it,
  /// falling back to a preloaded buffer read.
  static TraceBuffer load(const std::string& path);

  TraceBuffer(TraceBuffer&& other) noexcept;
  TraceBuffer& operator=(TraceBuffer&& other) noexcept;
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;
  ~TraceBuffer();

  const TraceHeader& header() const { return header_; }
  std::uint64_t records() const { return header_.records; }
  bool mapped() const { return mapped_ != nullptr; }

  const std::uint8_t* payload() const { return data_ + kTraceHeaderBytes; }
  std::size_t payload_size() const { return size_ - kTraceHeaderBytes; }

 private:
  TraceBuffer() = default;
  void validate();  ///< throws std::invalid_argument on malformed input

  std::vector<std::uint8_t> owned_;    ///< preloaded-buffer storage
  void* mapped_ = nullptr;             ///< mmap base (munmap'd on destroy)
  std::size_t mapped_size_ = 0;
  const std::uint8_t* data_ = nullptr; ///< view over owned_ or mapped_
  std::size_t size_ = 0;
  TraceHeader header_;
};

/// Sequential decoder over a validated buffer: plain pointer arithmetic,
/// no allocation, no failure paths (the buffer proved itself at load).
class TraceCursor {
 public:
  explicit TraceCursor(const TraceBuffer& buffer) : buffer_(&buffer) {
    rewind();
  }

  void rewind() {
    pos_ = buffer_->payload();
    remaining_ = buffer_->records();
    prev_key_ = 0;
    prev_size_image_ = 0;
  }

  bool done() const { return remaining_ == 0; }

  /// Decode and return the next record.  Precondition: !done().
  TraceRecord next();

 private:
  const TraceBuffer* buffer_;
  const std::uint8_t* pos_ = nullptr;
  std::uint64_t remaining_ = 0;
  std::uint64_t prev_key_ = 0;
  std::uint64_t prev_size_image_ = 0;
};

}  // namespace emcast::traffic
