#include "traffic/cbr_source.hpp"

#include <stdexcept>

namespace emcast::traffic {

CbrSource::CbrSource(const CbrConfig& config) : config_(config) {
  if (config.rate <= 0) throw std::invalid_argument("CbrSource: rate <= 0");
  if (config.packet_size <= 0) {
    throw std::invalid_argument("CbrSource: packet_size <= 0");
  }
  interval_ = config.packet_size / config.rate;
}

void CbrSource::start(sim::Simulator& sim, PacketSink sink, Time until) {
  sink_ = std::move(sink);
  sim.schedule_in(config_.phase, [this, &sim, until] { emit(sim, until); });
}

void CbrSource::emit(sim::Simulator& sim, Time until) {
  if (sim.now() > until) return;
  sim::Packet p;
  p.id = ids_.next();
  p.flow = config_.flow;
  p.group = config_.group;
  p.size = config_.packet_size;
  p.created = sim.now();
  p.hop_arrival = sim.now();
  sink_(std::move(p));
  sim.schedule_in(interval_, [this, &sim, until] { emit(sim, until); });
}

}  // namespace emcast::traffic
