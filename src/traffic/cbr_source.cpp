#include "traffic/cbr_source.hpp"

#include <stdexcept>

namespace emcast::traffic {

CbrSource::CbrSource(const CbrConfig& config) : config_(config) {
  if (config.rate <= 0) throw std::invalid_argument("CbrSource: rate <= 0");
  if (config.packet_size <= 0) {
    throw std::invalid_argument("CbrSource: packet_size <= 0");
  }
  interval_ = config.packet_size / config.rate;
}

void CbrSource::start(sim::SimContext ctx, PacketSink sink, Time until) {
  sink_ = std::move(sink);
  ctx.schedule_in(config_.phase, [this, ctx, until] { emit(ctx, until); });
}

void CbrSource::emit(sim::SimContext ctx, Time until) {
  if (ctx.now() > until) return;
  sim::Packet p;
  p.id = ids_.next();
  p.flow = config_.flow;
  p.group = config_.group;
  p.size = config_.packet_size;
  p.created = ctx.now();
  p.hop_arrival = ctx.now();
  sink_(std::move(p));
  ctx.schedule_in(interval_, [this, ctx, until] { emit(ctx, until); });
}

}  // namespace emcast::traffic
