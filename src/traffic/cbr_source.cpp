#include "traffic/cbr_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace emcast::traffic {

CbrSource::CbrSource(const CbrConfig& config) : config_(config) {
  if (config.rate <= 0) throw std::invalid_argument("CbrSource: rate <= 0");
  if (config.packet_size <= 0) {
    throw std::invalid_argument("CbrSource: packet_size <= 0");
  }
  interval_ = config.packet_size / config.rate;
}

void CbrSource::start(sim::SimContext ctx, PacketSink sink, Time until) {
  sink_ = std::move(sink);
  schedule_train(ctx, ctx.now() + config_.phase, until);
}

void CbrSource::schedule_train(sim::SimContext ctx, Time first, Time until) {
  // The next `batch` tick events in one calendar touch.  Tick times
  // accumulate sequentially (t_{n+1} = t_n + interval), NOT as
  // first + i*interval, so the emission instants are bit-identical to
  // the one-event-at-a-time chain this replaces.
  constexpr std::size_t kMaxTrain = 64;
  const std::size_t m = std::clamp<std::size_t>(config_.batch, 1, kMaxTrain);
  Time times[kMaxTrain];
  times[0] = first;
  for (std::size_t i = 1; i < m; ++i) times[i] = times[i - 1] + interval_;
  ctx.schedule_batch(times, m, [this, ctx, until, m](std::size_t i) {
    const bool last = i + 1 == m;
    return [this, ctx, until, last] { emit(ctx, until, last); };
  });
}

void CbrSource::emit(sim::SimContext ctx, Time until, bool last) {
  if (ctx.now() > until) return;
  sim::Packet p;
  p.id = ids_.next();
  p.flow = config_.flow;
  p.group = config_.group;
  p.size = config_.packet_size;
  p.created = ctx.now();
  p.hop_arrival = ctx.now();
  sink_(std::move(p));
  if (last) schedule_train(ctx, ctx.now() + interval_, until);
}

}  // namespace emcast::traffic
