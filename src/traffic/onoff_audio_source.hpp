#pragma once
// VBR audio: the classic on/off talkspurt model.  During a talkspurt
// packets are emitted at the peak rate; silences emit nothing.  The peak
// rate is chosen so the long-term mean equals `mean_rate` (64 kbit/s in
// the paper's simulations).
//
// Talkspurt lengths are uniform in [0.5, 1.5]·mean_on (mean preserved,
// *bounded*), silences exponential.  Bounding the spurts means the flow
// genuinely conforms to the declared (σ, ρ) envelope — the paper's
// analysis assumes Ri ~ (σi, ρi), and an unbounded spurt distribution
// would make the shaper backlog random-walk and swamp the load-dependent
// multiplexer delays the experiments measure.
//
// σ analysis: the worst spurt exceeds the mean-rate line by
// (peak − mean)·1.5·mean_on; plus one packet of quantisation.

#include "traffic/source.hpp"
#include "util/rng.hpp"

namespace emcast::traffic {

struct OnOffAudioConfig {
  Rate mean_rate = kbps(64);
  Time mean_on = 0.10;        ///< mean talkspurt length [s] (voice activity)
  Time mean_off = 0.15;       ///< mean silence length [s]
  double duty_jitter = 0.02;  ///< per-cycle duty-cycle wobble (relative)
  Bits packet_size = bytes(160);
  FlowId flow = 0;
  GroupId group = -1;
  std::uint64_t seed = 1;
};

class OnOffAudioSource final : public Source {
 public:
  explicit OnOffAudioSource(const OnOffAudioConfig& config);

  void start(sim::SimContext ctx, PacketSink sink, Time until) override;
  Rate mean_rate() const override { return config_.mean_rate; }
  Bits nominal_burst() const override;

  Rate peak_rate() const { return peak_rate_; }

 private:
  void begin_talkspurt(sim::SimContext ctx, Time until);
  void emit(sim::SimContext ctx, Time spurt_end, Time until);

  OnOffAudioConfig config_;
  Rate peak_rate_;
  Time packet_interval_;
  Time last_spurt_length_ = 0;
  PacketSink sink_;
  util::Rng rng_;
  sim::PacketIdAllocator ids_;
};

}  // namespace emcast::traffic
