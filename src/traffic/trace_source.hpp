#pragma once
// Trace-driven traffic source: replays a recorded (or synthesized) binary
// trace through the engine-agnostic sim::SimContext, emitting each packet
// at the bit-identical double timestamp the trace stores.
//
// Replay shape.  All records sharing one timestamp are emitted inside a
// single event, in trace order — the same burst shape the synthetic
// sources produce (an MPEG frame is handed to the network at one instant)
// — and the next event is scheduled at the next distinct timestamp.  The
// chain therefore produces exactly one sink call per record, with
// created/hop_arrival equal to the recorded emission time, and per-source
// packet ids in emission order: everything downstream of the source
// boundary sees what the live run's pipeline saw, which is why a
// recorded-then-replayed run's canonical DeliveryTrace is byte-identical
// (pinned by the ShardedSimTraceReplay differential suite).
//
// Zero-alloc replay.  The source holds a TraceCursor (pointer arithmetic
// over the validated buffer) and a 32-byte self-rescheduling event
// capture; steady-state replay performs no heap allocation
// (tests/sim/engine_alloc_test.cpp pins it).  start() rewinds, so one
// TraceSource replays across warm Engine::reset() runs without rebuild.
//
// Group filtering.  A trace may interleave several flows (a whole
// multigroup workload in one file); `group` selects one flow's records
// (-1 replays everything).  Skipped records cost a decode step, not an
// event.

#include <cstdint>

#include "traffic/source.hpp"
#include "traffic/trace_format.hpp"
#include "util/types.hpp"

namespace emcast::traffic {

struct TraceSourceConfig {
  /// Validated trace to replay; non-owning, must outlive the source.
  const TraceBuffer* trace = nullptr;
  /// Replay only records with this group id; -1 replays every record.
  GroupId group = -1;
  /// Distinct replay instants scheduled per schedule_batch call (clamped
  /// to [1, 64]).  Purely a scheduling amortisation: replay instants and
  /// packets are bit-identical for every value.
  std::size_t batch = 16;
};

class TraceSource final : public Source {
 public:
  /// Scans the trace once to derive the replayed flow's (σ, ρ) view:
  /// mean_rate = replayed bits / replayed time span, nominal_burst = the
  /// largest same-instant bit burst plus the mean-rate excess headroom.
  /// Throws std::invalid_argument on a null trace.
  explicit TraceSource(const TraceSourceConfig& config);

  /// Begin replay.  Restartable: every start() rewinds the cursor and the
  /// packet-id sequence, so warm-reuse runs replay identically.
  void start(sim::SimContext ctx, PacketSink sink, Time until) override;

  Rate mean_rate() const override { return mean_rate_; }
  Bits nominal_burst() const override { return burst_; }

  /// Records matching the group filter (what replay will emit).
  std::uint64_t matched_records() const { return matched_; }
  Time first_time() const { return first_time_; }
  Time last_time() const { return last_time_; }

 private:
  /// Decode forward to the next group-matching record into current_.
  bool advance();
  void schedule_train(sim::SimContext ctx, Time until);
  void emit(sim::SimContext ctx, Time until, bool last);

  TraceSourceConfig config_;
  TraceCursor cursor_;
  TraceRecord current_{};
  bool has_current_ = false;

  // Construction-time scan results.
  std::uint64_t matched_ = 0;
  Time first_time_ = 0;
  Time last_time_ = 0;
  Rate mean_rate_ = 0;
  Bits burst_ = 0;

  PacketSink sink_;
  sim::PacketIdAllocator ids_;
};

}  // namespace emcast::traffic
