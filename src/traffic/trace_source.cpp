#include "traffic/trace_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace emcast::traffic {

TraceSource::TraceSource(const TraceSourceConfig& config)
    : config_(config),
      cursor_(config.trace != nullptr
                  ? *config.trace
                  : throw std::invalid_argument("TraceSource: null trace")) {
  // One scan derives the (σ, ρ) view the regulators would ask a model
  // source for.  Setup-time work; replay itself re-walks the same bytes
  // allocation-free.
  Bits total = 0;
  Bits instant = 0;        // bits accumulated at the current timestamp
  Bits max_instant = 0;
  std::uint64_t prev_key = 0;
  TraceCursor scan(*config.trace);
  while (!scan.done()) {
    const TraceRecord r = scan.next();
    if (config_.group >= 0 && r.group != config_.group) continue;
    if (matched_ == 0) {
      first_time_ = r.time();
      instant = 0;
    } else if (r.time_key != prev_key) {
      instant = 0;
    }
    instant += r.size;
    max_instant = std::max(max_instant, instant);
    total += r.size;
    last_time_ = r.time();
    prev_key = r.time_key;
    ++matched_;
  }
  const Time span = last_time_ - first_time_;
  // A single-instant (or empty) trace has no measurable span; fall back
  // to "all of it in one second" so the rate is finite and conservative.
  mean_rate_ = span > 0 ? total / span : total;
  burst_ = max_instant;
}

bool TraceSource::advance() {
  while (!cursor_.done()) {
    current_ = cursor_.next();
    if (config_.group < 0 || current_.group == config_.group) return true;
  }
  return false;
}

void TraceSource::start(sim::SimContext ctx, PacketSink sink, Time until) {
  sink_ = std::move(sink);
  cursor_.rewind();
  ids_ = sim::PacketIdAllocator{};
  has_current_ = advance();
  if (!has_current_) return;
  if (current_.time() > until) return;
  schedule_train(ctx, until);
}

void TraceSource::schedule_train(sim::SimContext ctx, Time until) {
  // The next `batch` distinct replay instants, discovered with a
  // lookahead COPY of the cursor (no records consumed — the live cursor
  // still feeds emit in order), scheduled in one calendar touch.  The
  // instants are the records' own timestamps, so batching cannot perturb
  // them; instants past `until` never enter the batch, mirroring the
  // old chain's stop condition.
  constexpr std::size_t kMaxTrain = 64;
  const std::size_t k = std::clamp<std::size_t>(config_.batch, 1, kMaxTrain);
  Time times[kMaxTrain];
  std::size_t m = 0;
  times[m++] = current_.time();
  std::uint64_t key = current_.time_key;
  TraceCursor look = cursor_;
  while (m < k && !look.done()) {
    const TraceRecord r = look.next();
    if (config_.group >= 0 && r.group != config_.group) continue;
    if (r.time_key == key) continue;
    if (r.time() > until) break;
    key = r.time_key;
    times[m++] = r.time();
  }
  ctx.schedule_batch(times, m, [this, ctx, until, m](std::size_t i) {
    const bool last = i + 1 == m;
    return [this, ctx, until, last] { emit(ctx, until, last); };
  });
}

void TraceSource::emit(sim::SimContext ctx, Time until, bool last) {
  if (ctx.now() > until) return;
  // Emit every record sharing this instant inside one event — the same
  // burst shape a live source produces.  The batch scheduled one event
  // per upcoming distinct timestamp, so each fires exactly when the
  // cursor stands at its instant; the batch tail chains the next train.
  const std::uint64_t key = current_.time_key;
  while (has_current_ && current_.time_key == key) {
    sim::Packet p;
    p.id = ids_.next();
    p.flow = current_.flow;
    p.group = current_.group;
    p.size = current_.size;
    p.created = ctx.now();
    p.hop_arrival = ctx.now();
    sink_(std::move(p));
    has_current_ = advance();
  }
  if (!last || !has_current_) return;
  if (current_.time() > until) return;
  schedule_train(ctx, until);
}

}  // namespace emcast::traffic
