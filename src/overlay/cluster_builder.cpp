#include "overlay/cluster_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace emcast::overlay {

namespace {

/// RTT medoid: the member minimising the sum of RTTs to the others.  With
/// a budget, only members that can still adopt (size−1) children qualify;
/// if none qualifies, fall back to the member with the most budget left
/// (a deliberate, observable overload — the scheme's failure mode).
std::size_t elect_core(const std::vector<std::size_t>& members,
                       const RttFn& rtt,
                       const std::vector<std::size_t>* budget) {
  const std::size_t need = members.size() - 1;
  std::size_t best = members.front();
  Time best_cost = kTimeInfinity;
  bool found = false;
  for (std::size_t candidate : members) {
    if (budget != nullptr && (*budget)[candidate] < need) continue;
    Time cost = 0;
    for (std::size_t other : members) {
      if (other != candidate) cost += rtt(candidate, other);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
      found = true;
    }
  }
  if (!found && budget != nullptr) {
    best = *std::max_element(members.begin(), members.end(),
                             [&](std::size_t a, std::size_t b) {
                               return (*budget)[a] < (*budget)[b];
                             });
  }
  return best;
}

}  // namespace

std::vector<Cluster> cluster_once(const std::vector<std::size_t>& ids,
                                  const RttFn& rtt, const ClusterConfig& cfg,
                                  util::Rng& rng) {
  if (cfg.min_size < 2 || cfg.max_size < cfg.min_size) {
    throw std::invalid_argument("cluster_once: bad size range");
  }
  std::vector<std::size_t> unassigned = ids;
  std::vector<Cluster> clusters;
  while (!unassigned.empty()) {
    // Paper rule: if fewer than max_size+1 members remain they form one
    // final cluster; otherwise draw a size from [min_size, max_size].
    std::size_t want;
    if (unassigned.size() <= cfg.max_size) {
      want = unassigned.size();
    } else {
      want = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(cfg.min_size),
          static_cast<std::int64_t>(cfg.max_size)));
      // Never leave a single orphan behind (it could not form a cluster).
      if (unassigned.size() - want == 1) ++want;
    }
    // Seed selection.
    std::size_t seed_pos = 0;
    if (cfg.random_seeds && unassigned.size() > 1) {
      seed_pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(unassigned.size()) - 1));
    }
    const std::size_t seed = unassigned[seed_pos];
    // Sort remaining by RTT to the seed and take the closest (want−1).
    std::vector<std::size_t> rest;
    rest.reserve(unassigned.size() - 1);
    for (std::size_t i = 0; i < unassigned.size(); ++i) {
      if (i != seed_pos) rest.push_back(unassigned[i]);
    }
    const std::size_t take = std::min(want - 1, rest.size());
    std::partial_sort(rest.begin(),
                      rest.begin() + static_cast<std::ptrdiff_t>(take),
                      rest.end(), [&](std::size_t a, std::size_t b) {
                        return rtt(seed, a) < rtt(seed, b);
                      });
    Cluster c;
    c.members.push_back(seed);
    c.members.insert(c.members.end(), rest.begin(),
                     rest.begin() + static_cast<std::ptrdiff_t>(take));
    c.core = elect_core(c.members, rtt, cfg.budget);
    if (cfg.budget != nullptr) {
      auto& left = (*cfg.budget)[c.core];
      left -= std::min(left, c.members.size() - 1);
    }
    clusters.push_back(std::move(c));
    unassigned.assign(rest.begin() + static_cast<std::ptrdiff_t>(take),
                      rest.end());
  }
  return clusters;
}

Hierarchy build_hierarchy(const std::vector<std::size_t>& ids,
                          const RttFn& rtt, const ClusterConfig& cfg,
                          util::Rng& rng) {
  if (ids.empty()) throw std::invalid_argument("build_hierarchy: no members");
  Hierarchy h;
  std::vector<std::size_t> layer_ids = ids;
  if (layer_ids.size() == 1) {
    h.top = layer_ids.front();
    return h;
  }
  while (layer_ids.size() > 1) {
    auto clusters = cluster_once(layer_ids, rtt, cfg, rng);
    layer_ids.clear();
    for (const auto& c : clusters) layer_ids.push_back(c.core);
    h.layers.push_back(std::move(clusters));
  }
  h.top = layer_ids.front();
  return h;
}

void hierarchy_to_parents(const Hierarchy& h,
                          std::vector<std::size_t>& parent) {
  // Walk bottom-up: at each layer, every non-core member's parent is the
  // cluster core.  A member that is also a core keeps climbing; its parent
  // is assigned at the layer where it stops being a core.
  for (const auto& layer : h.layers) {
    for (const auto& c : layer) {
      for (std::size_t m : c.members) {
        if (m != c.core) parent[m] = c.core;
      }
    }
  }
  parent[h.top] = MulticastTree::npos;
}

}  // namespace emcast::overlay
