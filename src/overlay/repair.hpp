#pragma once
// Membership churn: repairing a multicast tree when members leave or join
// without rebuilding the whole hierarchy.  EMcast systems must survive
// churn (hosts are end users, not routers); the paper defers churn to the
// underlying DSCT/NICE protocols, so this module implements the standard
// local-repair rules those protocols use:
//
//   leave  — the departed member's children are re-parented onto its own
//            parent (grandparent splice).  If the root leaves, its closest
//            child is promoted to root and adopts its siblings.
//   join   — the newcomer attaches to the RTT-closest member whose fanout
//            is below a configurable cap (NICE's "join the nearest
//            non-full cluster" in tree form).
//
// Repairs operate on the member-index space of the original group;
// removed members get a tombstone (alive() == false) so flow wiring stays
// index-stable across a simulation.

#include <cstddef>
#include <vector>

#include "overlay/cluster_builder.hpp"
#include "overlay/tree.hpp"

namespace emcast::overlay {

class ChurnTree {
 public:
  /// Wrap a freshly-built tree for incremental repair.
  explicit ChurnTree(const MulticastTree& tree);

  std::size_t size() const { return parent_.size(); }
  std::size_t alive_count() const { return alive_count_; }
  bool alive(std::size_t i) const { return alive_[i]; }
  std::size_t root() const { return root_; }
  std::size_t parent(std::size_t i) const { return parent_[i]; }
  const std::vector<std::size_t>& children(std::size_t i) const {
    return children_[i];
  }

  /// Member `i` leaves; its children are spliced to its parent.  Root
  /// departure promotes the child with the smallest RTT to the root's
  /// parent position.  Returns the number of re-parented members.
  std::size_t leave(std::size_t i, const RttFn& rtt);

  /// Previously-departed member `i` re-joins, attaching to the closest
  /// alive member with fewer than `max_fanout` children.
  void join(std::size_t i, const RttFn& rtt, std::size_t max_fanout);

  /// Depth of member i in hops from the root (alive members only).
  int depth(std::size_t i) const;

  /// Max depth over alive members.
  int height_hops() const;

  /// Consistency check: every alive member reaches the root through alive
  /// ancestors, with no cycles.
  bool valid() const;

 private:
  void detach_from_parent(std::size_t i);

  std::vector<std::size_t> parent_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<bool> alive_;
  std::size_t root_;
  std::size_t alive_count_;
};

}  // namespace emcast::overlay
