#pragma once
// Membership churn: repairing a multicast tree when members leave or join
// without rebuilding the whole hierarchy.  EMcast systems must survive
// churn (hosts are end users, not routers); the paper defers churn to the
// underlying DSCT/NICE protocols, so this module implements the standard
// local-repair rules those protocols use:
//
//   leave  — the departed member's children are re-parented onto its own
//            parent (grandparent splice).  If the root leaves, its closest
//            child is promoted to root and adopts its siblings; if the
//            LAST member leaves, the tree becomes empty (root() == npos)
//            instead of throwing — mid-simulation churn schedules must
//            never abort the run on a legal membership sequence.
//   join   — the newcomer attaches to the RTT-closest member whose fanout
//            is below a configurable cap (NICE's "join the nearest
//            non-full cluster" in tree form).  Joining an empty tree
//            makes the newcomer the root.
//
// Repairs operate on the member-index space of the original group;
// removed members get a tombstone (alive() == false) so flow wiring stays
// index-stable across a simulation.
//
// The in-simulation fault-injection path (experiments/churn_schedule)
// keeps one ChurnTree replica per kernel and replays the same repair
// sequence on each, so every mutation here is a pure function of the
// current tree state and the RTT metric, and the steady-state mutation
// path performs no heap allocation once the arenas are warm: leave()
// stages orphans in a reusable scratch buffer (not a moved-out vector),
// and reset() rebinds to a base tree inside the retained capacities.

#include <cstddef>
#include <vector>

#include "overlay/cluster_builder.hpp"
#include "overlay/tree.hpp"

namespace emcast::overlay {

class ChurnTree {
 public:
  /// Wrap a freshly-built tree for incremental repair.
  explicit ChurnTree(const MulticastTree& tree);

  /// Warm rewind for another run: re-adopt `tree`'s structure with every
  /// member alive again.  Reuses the existing arenas — after a first run
  /// grew them, a reset + identical churn sequence allocates nothing.
  void reset(const MulticastTree& tree);

  std::size_t size() const { return parent_.size(); }
  std::size_t alive_count() const { return alive_count_; }
  bool alive(std::size_t i) const { return alive_[i]; }
  /// Current root; MulticastTree::npos when every member has departed.
  std::size_t root() const { return root_; }
  std::size_t parent(std::size_t i) const { return parent_[i]; }
  const std::vector<std::size_t>& children(std::size_t i) const {
    return children_[i];
  }

  /// Member `i` leaves; its children are spliced to its parent.  Root
  /// departure promotes the child with the smallest RTT to the root's
  /// parent position; the last member's departure empties the tree
  /// (root() == npos, alive_count() == 0).  Returns the number of
  /// re-parented members.
  std::size_t leave(std::size_t i, const RttFn& rtt);

  /// Previously-departed member `i` re-joins, attaching to the closest
  /// alive member with fewer than `max_fanout` children.  Joining an
  /// empty tree promotes `i` to root.
  void join(std::size_t i, const RttFn& rtt, std::size_t max_fanout);

  /// Depth of member i in hops from the root (alive members only).
  int depth(std::size_t i) const;

  /// Max depth over alive members (0 for an empty tree).
  int height_hops() const;

  /// Consistency check: every alive member reaches the root through alive
  /// ancestors, with no cycles.  The empty tree is valid.
  bool valid() const;

 private:
  void detach_from_parent(std::size_t i);

  std::vector<std::size_t> parent_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<bool> alive_;
  std::size_t root_;
  std::size_t alive_count_;
  /// Orphan staging for leave(): reused so repeated repairs do not churn
  /// the allocator (the moved-out-vector idiom lost the capacity of
  /// children_[i] on every departure).
  std::vector<std::size_t> scratch_orphans_;
};

}  // namespace emcast::overlay
