#include "overlay/tree.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace emcast::overlay {

MulticastTree::MulticastTree(std::vector<Member> members,
                             std::vector<std::size_t> parent, std::size_t root,
                             int hierarchy_layers)
    : members_(std::move(members)),
      parent_(std::move(parent)),
      root_(root),
      hierarchy_layers_(hierarchy_layers) {
  const std::size_t n = members_.size();
  if (parent_.size() != n) {
    throw std::invalid_argument("MulticastTree: parent size mismatch");
  }
  if (root >= n || parent_[root] != npos) {
    throw std::invalid_argument("MulticastTree: bad root");
  }
  children_.resize(n);
  std::size_t root_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (parent_[i] == npos) {
      ++root_count;
      continue;
    }
    if (parent_[i] >= n || parent_[i] == i) {
      throw std::invalid_argument("MulticastTree: bad parent pointer");
    }
    children_[parent_[i]].push_back(i);
  }
  if (root_count != 1) {
    throw std::invalid_argument("MulticastTree: must have exactly one root");
  }
  // Reachability check: BFS must visit all members (also rejects cycles).
  if (bfs_order().size() != n) {
    throw std::invalid_argument("MulticastTree: not a spanning tree");
  }
}

void MulticastTree::build_depths() const {
  if (!depth_cache_.empty()) return;
  depth_cache_.assign(members_.size(), -1);
  depth_cache_[root_] = 0;
  for (std::size_t i : bfs_order()) {
    for (std::size_t c : children_[i]) {
      depth_cache_[c] = depth_cache_[i] + 1;
    }
  }
}

int MulticastTree::height_hops() const {
  build_depths();
  return *std::max_element(depth_cache_.begin(), depth_cache_.end());
}

int MulticastTree::depth(std::size_t i) const {
  build_depths();
  return depth_cache_[i];
}

std::vector<std::size_t> MulticastTree::path_from_root(std::size_t i) const {
  std::vector<std::size_t> path;
  for (std::size_t v = i;; v = parent_[v]) {
    path.push_back(v);
    if (v == root_) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::size_t MulticastTree::max_fanout() const {
  std::size_t best = 0;
  for (const auto& c : children_) best = std::max(best, c.size());
  return best;
}

std::vector<std::size_t> MulticastTree::bfs_order() const {
  std::vector<std::size_t> order;
  order.reserve(members_.size());
  std::queue<std::size_t> frontier;
  frontier.push(root_);
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    order.push_back(u);
    for (std::size_t c : children_[u]) frontier.push(c);
  }
  return order;
}

}  // namespace emcast::overlay
