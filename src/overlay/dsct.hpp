#pragma once
// DSCT tree construction ([14], as specified by Section V of the paper):
// a location-aware hierarchy-and-cluster architecture.
//
//  1. Members are partitioned into *local domains* — one per backbone
//     router they attach to.
//  2. Inside each domain, the closest s_ina members (s_ina random in
//     [k, 3k−1]) form an "intra-cluster"; each cluster elects a core that
//     joins the layer above; iterating yields the domain's *local core*.
//  3. The local cores of all domains then form "inter-clusters" of size
//     s_ine (random in [k, 3k−1]) the same way, up to a single top member.
//  4. The tree is re-rooted at the group's source member so data flows
//     source → receivers.

#include <cstdint>

#include "overlay/cluster_builder.hpp"
#include "overlay/tree.hpp"

namespace emcast::overlay {

struct DsctConfig {
  std::size_t k = 3;         ///< minimum cluster size (paper sets 3)
  std::uint64_t seed = 7;    ///< drives the random cluster sizes
  /// Override the cluster size range (used by the capacity-aware variant);
  /// when zero, the range is [k, 3k−1].
  std::size_t min_size_override = 0;
  std::size_t max_size_override = 0;
  /// Optional shared per-member fan-out budget (see ClusterConfig::budget).
  std::vector<std::size_t>* budget = nullptr;
};

/// Build a DSCT tree.
///  members:  the group's members (index order defines member ids)
///  domain:   domain[i] = local-domain id of member i (attachment router)
///  rtt:      member-to-member RTT oracle
///  source:   member index of the group's traffic source (tree root)
MulticastTree build_dsct(std::vector<Member> members,
                         const std::vector<int>& domain, const RttFn& rtt,
                         std::size_t source, const DsctConfig& config);

/// Re-root a parent vector at `new_root` by reversing the pointers on the
/// old-root → new_root path.  Shared by all builders.
void reroot(std::vector<std::size_t>& parent, std::size_t new_root);

}  // namespace emcast::overlay
