#pragma once
// Overlay multicast tree over a set of group members.  Members are indexed
// 0..n−1 within the group; each carries the underlay node it attaches to so
// overlay edges can be priced by underlay propagation delay.

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace emcast::overlay {

/// A group member: position `index` in the group, living at underlay node
/// `node` (an end-host node of the attached network).
struct Member {
  std::size_t index = 0;
  NodeId node = kInvalidNode;
};

class MulticastTree {
 public:
  /// Build from a parent vector (parent[i] = member index of i's parent,
  /// npos for the root).  Validates that the structure is a single rooted
  /// spanning tree.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  MulticastTree(std::vector<Member> members, std::vector<std::size_t> parent,
                std::size_t root, int hierarchy_layers);

  std::size_t size() const { return members_.size(); }
  std::size_t root() const { return root_; }
  const Member& member(std::size_t i) const { return members_[i]; }
  std::size_t parent(std::size_t i) const { return parent_[i]; }
  const std::vector<std::size_t>& children(std::size_t i) const {
    return children_[i];
  }

  /// Number of layers in the cluster hierarchy that produced the tree —
  /// the "tree layer number" reported by the paper's Tables I–III.
  int hierarchy_layers() const { return hierarchy_layers_; }

  /// Height in overlay hops (edges) from the root to the deepest member.
  int height_hops() const;

  /// Depth in hops of member i (0 for the root).
  int depth(std::size_t i) const;

  /// Member indices on the path root → i (inclusive).
  std::vector<std::size_t> path_from_root(std::size_t i) const;

  /// Maximum number of children over all members (forwarding fan-out).
  std::size_t max_fanout() const;

  /// Members in breadth-first (top-down) order — forwarding order.
  std::vector<std::size_t> bfs_order() const;

 private:
  std::vector<Member> members_;
  std::vector<std::size_t> parent_;
  std::vector<std::vector<std::size_t>> children_;
  std::size_t root_;
  int hierarchy_layers_;
  mutable std::vector<int> depth_cache_;
  void build_depths() const;
};

}  // namespace emcast::overlay
