#pragma once
// Capacity-aware tree construction — the baseline the paper argues against
// (Fig. 1, [5, 12-13]).  Instead of regulating traffic, these schemes bound
// each host's forwarding fan-out by its output capacity: a host carrying K̂
// flows of aggregate normalised rate ρ̄ can feed at most
//      f(ρ̄) = ⌊C_host / (ρ̄ · C)⌋
// children.  As the load ρ̄ rises, the fan-out bound shrinks, clusters get
// smaller and the tree gets taller — the height growth of Tables I–III and
// the delay growth of Fig. 6.
//
// C_host/C (host output capacity relative to the normalising link
// capacity) is the one free parameter; 1.75 reproduces the paper's height
// range 5→9 for n = 665 (see DESIGN.md, "Capacity-aware fanout").

#include <cstdint>

#include "overlay/dsct.hpp"
#include "overlay/nice.hpp"

namespace emcast::overlay {

struct CapacityAwareConfig {
  double utilization = 0.5;        ///< ρ̄: total normalised input rate
  double host_capacity_factor = 1.75;  ///< C_host / C
  std::size_t min_fanout = 2;      ///< floor (a chain would be degenerate)
  std::size_t max_fanout = 8;      ///< cap (matches 3k−1 with k = 3)
  std::uint64_t seed = 7;
  /// Shared per-member *total* child budget across all K trees,
  /// ⌊C_host/ρ_flow⌋ slots per host (Fig. 1's bound).  When building K
  /// group trees, pass the same vector to every build so cores that spent
  /// their capacity in one tree stop being elected in the next.
  std::vector<std::size_t>* budget = nullptr;
  /// Fraction of C_host the budget may commit.  Packing children up to
  /// exactly C_host would run hot hosts at utilisation 1 (unstable queues);
  /// real capacity-aware schemes leave slack for burstiness.
  double budget_safety = 0.85;
};

/// Initial per-host child budget: ⌊C_host/ρ_flow⌋ = ⌊factor·K/ρ̄⌋ slots
/// (ρ_flow approximated by the mean per-flow rate ρ̄·C/K; heterogeneous
/// mixes use the same average — see DESIGN.md).
std::size_t capacity_child_budget(const CapacityAwareConfig& config,
                                  int groups);

/// Fan-out bound f(ρ̄) with clamping.
std::size_t capacity_fanout(const CapacityAwareConfig& config);

/// Capacity-aware DSCT: domain-aware clustering with cluster sizes driven
/// by f(ρ̄) (range [f, 2f−1]) instead of [k, 3k−1].
MulticastTree build_capacity_aware_dsct(std::vector<Member> members,
                                        const std::vector<int>& domain,
                                        const RttFn& rtt, std::size_t source,
                                        const CapacityAwareConfig& config);

/// Capacity-aware NICE: global clustering with the same size rule.
MulticastTree build_capacity_aware_nice(std::vector<Member> members,
                                        const RttFn& rtt, std::size_t source,
                                        const CapacityAwareConfig& config);

}  // namespace emcast::overlay
