#pragma once
// Multi-group overlay assembly: the Simulation-II setting.  All hosts of an
// attached network join all K groups ("665 end hosts ... who join in 3
// groups"); each group gets its own tree built by the selected scheme, and
// every host therefore terminates K̂ = K flows.

#include <cstdint>
#include <memory>
#include <vector>

#include "overlay/capacity_aware.hpp"
#include "overlay/dsct.hpp"
#include "overlay/nice.hpp"
#include "overlay/tree.hpp"
#include "topology/hierarchical.hpp"
#include "topology/host_attachment.hpp"
#include "topology/partition.hpp"
#include "topology/shortest_path.hpp"

namespace emcast::overlay {

enum class TreeScheme {
  Dsct,               ///< DSCT with fixed [k, 3k−1] clusters (regulated)
  Nice,               ///< NICE with fixed [k, 3k−1] clusters (regulated)
  CapacityAwareDsct,  ///< DSCT with load-driven fan-out bound
  CapacityAwareNice,  ///< NICE with load-driven fan-out bound
};

const char* to_string(TreeScheme scheme);

struct MultiGroupConfig {
  int groups = 3;
  TreeScheme scheme = TreeScheme::Dsct;
  std::size_t k = 3;
  /// Only used by the capacity-aware schemes.
  double utilization = 0.5;
  double host_capacity_factor = 1.75;
  std::uint64_t seed = 11;
};

class MultiGroupNetwork {
 public:
  /// Build trees for `config.groups` groups over the hosts of `net`.
  /// Every host joins every group; sources are distinct random hosts.
  MultiGroupNetwork(const topology::AttachedNetwork& net,
                    const MultiGroupConfig& config);

  int groups() const { return static_cast<int>(trees_.size()); }
  std::size_t host_count() const { return net_->hosts.size(); }
  const MulticastTree& tree(int group) const { return trees_[static_cast<std::size_t>(group)]; }
  std::size_t source(int group) const { return sources_[static_cast<std::size_t>(group)]; }
  const topology::AttachedNetwork& network() const { return *net_; }

  /// One-way underlay propagation delay between two member indices (host
  /// indices; identical across groups since everyone joins everything).
  /// Backed by one of two providers, chosen by the network's
  /// compact_host_delays marker:
  ///   - legacy: full all-pairs DelayMatrix over routers + hosts — keeps
  ///     the bit-exact delay values every existing trace test pins;
  ///   - compact: HostDelayOracle (access + RxR router matrix + access)
  ///     — exact too, but a different float-addition order, and the only
  ///     provider that fits in memory at 10^6 hosts.
  Time member_delay(std::size_t a, std::size_t b) const {
    return oracle_ ? oracle_->between_hosts(a, b)
                   : delays_->at(net_->hosts[a], net_->hosts[b]);
  }

  /// True when the compact router-level oracle backs member_delay.
  bool compact_delays() const { return oracle_ != nullptr; }

  /// Bytes held by the delay provider (matrix or oracle) — the dominant
  /// per-network memory term, reported into the scale memory budget.
  std::size_t delay_memory_bytes() const;

  const MultiGroupConfig& config() const { return config_; }

 private:
  const topology::AttachedNetwork* net_;
  std::shared_ptr<topology::DelayMatrix> delays_;        ///< legacy provider
  std::shared_ptr<topology::HostDelayOracle> oracle_;    ///< compact provider
  MultiGroupConfig config_;
  std::vector<MulticastTree> trees_;
  std::vector<std::size_t> sources_;
};

/// Quality of a host partition with respect to the K overlay trees: how
/// many tree edges cross shards, and the minimum underlay delay over the
/// crossing edges — the quantity the sharded simulator's conservative
/// lookahead is derived from.
struct PartitionStats {
  std::size_t cross_edges = 0;
  std::size_t total_edges = 0;
  /// min over cross-shard tree edges of member_delay(parent, child);
  /// kTimeInfinity when no edge crosses (single shard).
  Time min_cross_delay = kTimeInfinity;
  std::size_t max_shard_hosts = 0;
  /// Number of shards the evaluated map names (max entry + 1).
  std::size_t shards = 0;
  /// Per ordered shard pair, min over (parent in src, child in dst) tree
  /// edges of member_delay(parent, child) — flattened row-major
  /// [src * shards + dst], kTimeInfinity where no edge crosses that pair.
  /// The per-pair analogue of min_cross_delay: the sharded engine derives
  /// its pair lookahead matrix from it to widen conservative windows.
  std::vector<Time> pair_min_delay;
};

PartitionStats evaluate_partition(const MultiGroupNetwork& mg,
                                  const std::vector<std::uint32_t>& shard_of);

/// Derive a sharding partition for a built multigroup overlay: attachment
/// domains stay whole (locality / large lookahead), weighted by each
/// host's forwarding fan-out across the K trees (balance of the actual
/// event load, not just host counts).
topology::HostPartition derive_partition(const MultiGroupNetwork& mg,
                                         std::size_t shards);

}  // namespace emcast::overlay
