#include "overlay/capacity_aware.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emcast::overlay {

std::size_t capacity_fanout(const CapacityAwareConfig& config) {
  if (config.utilization <= 0.0 || config.utilization > 1.0) {
    throw std::invalid_argument("capacity_fanout: ρ̄ must be in (0,1]");
  }
  const double raw = config.host_capacity_factor / config.utilization;
  const auto f = static_cast<std::size_t>(std::max(1.0, std::floor(raw)));
  return std::clamp(f, config.min_fanout, config.max_fanout);
}

std::size_t capacity_child_budget(const CapacityAwareConfig& config,
                                  int groups) {
  if (groups < 1) throw std::invalid_argument("capacity_child_budget: K < 1");
  const double slots = config.budget_safety * config.host_capacity_factor *
                       static_cast<double>(groups) / config.utilization;
  return static_cast<std::size_t>(std::max(1.0, std::floor(slots)));
}

MulticastTree build_capacity_aware_dsct(std::vector<Member> members,
                                        const std::vector<int>& domain,
                                        const RttFn& rtt, std::size_t source,
                                        const CapacityAwareConfig& config) {
  const std::size_t f = capacity_fanout(config);
  DsctConfig dsct;
  dsct.seed = config.seed;
  dsct.min_size_override = std::max<std::size_t>(2, f);
  dsct.max_size_override = f + 2;
  dsct.budget = config.budget;
  return build_dsct(std::move(members), domain, rtt, source, dsct);
}

MulticastTree build_capacity_aware_nice(std::vector<Member> members,
                                        const RttFn& rtt, std::size_t source,
                                        const CapacityAwareConfig& config) {
  const std::size_t f = capacity_fanout(config);
  NiceConfig nice;
  nice.seed = config.seed;
  nice.min_size_override = std::max<std::size_t>(2, f);
  nice.max_size_override = f + 2;
  nice.budget = config.budget;
  return build_nice(std::move(members), rtt, source, nice);
}

}  // namespace emcast::overlay
