#pragma once
// Structural tree metrics: heights, depths, fan-out, path propagation cost
// and underlay link stress — the non-delay EMcast quality measures the
// paper mentions alongside the WDB ("like tree stability and link stress").

#include <map>
#include <utility>

#include "overlay/multigroup.hpp"
#include "overlay/tree.hpp"
#include "topology/graph.hpp"
#include "util/stats.hpp"

namespace emcast::overlay {

struct TreeMetrics {
  int hierarchy_layers = 0;  ///< construction layers (Tables I–III)
  int height_hops = 0;       ///< overlay hops root → deepest member
  double mean_depth = 0;     ///< average member depth [hops]
  std::size_t max_fanout = 0;
  Time max_path_propagation = 0;  ///< worst root→member underlay delay sum
  double mean_path_propagation = 0;
};

/// Compute structural metrics; propagation costs use the network's
/// host-to-host delay matrix.
TreeMetrics measure_tree(const MulticastTree& tree,
                         const MultiGroupNetwork& net);

/// Underlay link stress: how many overlay edges of `tree` route over each
/// underlay link (keyed by node pair, smaller id first).  Returns
/// (max stress, mean stress over used links).
struct LinkStress {
  std::size_t max_stress = 0;
  double mean_stress = 0;
  std::map<std::pair<NodeId, NodeId>, std::size_t> per_link;
};
LinkStress measure_link_stress(const MulticastTree& tree,
                               const topology::Graph& graph);

}  // namespace emcast::overlay
