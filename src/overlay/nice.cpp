#include "overlay/nice.hpp"

#include <numeric>
#include <stdexcept>

#include "overlay/dsct.hpp"  // reroot()

namespace emcast::overlay {

MulticastTree build_nice(std::vector<Member> members, const RttFn& rtt,
                         std::size_t source, const NiceConfig& config) {
  const std::size_t n = members.size();
  if (n == 0) throw std::invalid_argument("build_nice: no members");
  if (source >= n) throw std::invalid_argument("build_nice: bad source");

  util::Rng rng(config.seed);
  ClusterConfig cluster_cfg;
  cluster_cfg.min_size =
      config.min_size_override ? config.min_size_override : config.k;
  cluster_cfg.max_size = config.max_size_override ? config.max_size_override
                                                  : 3 * config.k - 1;
  cluster_cfg.random_seeds = true;  // incremental joins in random order
  cluster_cfg.budget = config.budget;

  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  auto h = build_hierarchy(ids, rtt, cluster_cfg, rng);

  std::vector<std::size_t> parent(n, MulticastTree::npos);
  hierarchy_to_parents(h, parent);
  const int layers = h.layer_count();

  reroot(parent, source);
  return MulticastTree(std::move(members), std::move(parent), source, layers);
}

}  // namespace emcast::overlay
