#include "overlay/repair.hpp"

#include <algorithm>
#include <stdexcept>

namespace emcast::overlay {

ChurnTree::ChurnTree(const MulticastTree& tree)
    : parent_(tree.size()),
      children_(tree.size()),
      alive_(tree.size(), true),
      root_(tree.root()),
      alive_count_(tree.size()) {
  for (std::size_t i = 0; i < tree.size(); ++i) {
    parent_[i] = tree.parent(i);
    children_[i] = tree.children(i);
  }
}

void ChurnTree::reset(const MulticastTree& tree) {
  const std::size_t n = tree.size();
  parent_.resize(n);
  children_.resize(n);
  alive_.assign(n, true);
  root_ = tree.root();
  alive_count_ = n;
  for (std::size_t i = 0; i < n; ++i) {
    parent_[i] = tree.parent(i);
    // assign() re-fills within the capacity a previous run's churn grew.
    children_[i].assign(tree.children(i).begin(), tree.children(i).end());
  }
}

void ChurnTree::detach_from_parent(std::size_t i) {
  const std::size_t p = parent_[i];
  if (p == MulticastTree::npos) return;
  auto& siblings = children_[p];
  siblings.erase(std::remove(siblings.begin(), siblings.end(), i),
                 siblings.end());
}

std::size_t ChurnTree::leave(std::size_t i, const RttFn& rtt) {
  if (i >= parent_.size() || !alive_[i]) {
    throw std::invalid_argument("ChurnTree::leave: not an alive member");
  }
  alive_[i] = false;
  --alive_count_;

  scratch_orphans_.assign(children_[i].begin(), children_[i].end());
  children_[i].clear();

  if (alive_count_ == 0) {
    // Last member out: the tree is legally empty until the next join.
    parent_[i] = MulticastTree::npos;
    root_ = MulticastTree::npos;
    return 0;
  }

  std::size_t new_parent;
  std::size_t reparented = 0;
  if (i == root_) {
    if (scratch_orphans_.empty()) {
      // A valid tree cannot reach here (every surviving member descends
      // from the root, so a departing root with survivors has children);
      // keep the operation total anyway: promote the lowest-index
      // survivor so a churn schedule never aborts mid-run.
      parent_[i] = MulticastTree::npos;
      for (std::size_t cand = 0; cand < parent_.size(); ++cand) {
        if (alive_[cand]) {
          root_ = cand;
          parent_[cand] = MulticastTree::npos;
          break;
        }
      }
      return 0;
    }
    // Promote the orphan closest (by RTT) to the departed root.
    auto best = std::min_element(
        scratch_orphans_.begin(), scratch_orphans_.end(),
        [&](std::size_t a, std::size_t b) { return rtt(i, a) < rtt(i, b); });
    root_ = *best;
    parent_[root_] = MulticastTree::npos;
    new_parent = root_;
    scratch_orphans_.erase(best);
  } else {
    detach_from_parent(i);
    new_parent = parent_[i];
  }
  parent_[i] = MulticastTree::npos;

  for (std::size_t orphan : scratch_orphans_) {
    parent_[orphan] = new_parent;
    children_[new_parent].push_back(orphan);
    ++reparented;
  }
  return reparented;
}

void ChurnTree::join(std::size_t i, const RttFn& rtt,
                     std::size_t max_fanout) {
  if (i >= parent_.size() || alive_[i]) {
    throw std::invalid_argument("ChurnTree::join: not a departed member");
  }
  if (alive_count_ == 0) {
    // First member back into an emptied tree restarts it as root.
    alive_[i] = true;
    alive_count_ = 1;
    root_ = i;
    parent_[i] = MulticastTree::npos;
    return;
  }
  std::size_t best = MulticastTree::npos;
  Time best_rtt = kTimeInfinity;
  for (std::size_t cand = 0; cand < parent_.size(); ++cand) {
    if (!alive_[cand]) continue;
    if (children_[cand].size() >= max_fanout) continue;
    const Time r = rtt(i, cand);
    if (r < best_rtt) {
      best_rtt = r;
      best = cand;
    }
  }
  if (best == MulticastTree::npos) {
    // Every host is full: attach to the closest member regardless (a real
    // system would trigger a cluster split here).
    for (std::size_t cand = 0; cand < parent_.size(); ++cand) {
      if (!alive_[cand]) continue;
      const Time r = rtt(i, cand);
      if (r < best_rtt) {
        best_rtt = r;
        best = cand;
      }
    }
  }
  alive_[i] = true;
  ++alive_count_;
  parent_[i] = best;
  children_[best].push_back(i);
}

int ChurnTree::depth(std::size_t i) const {
  int d = 0;
  for (std::size_t v = i; v != root_; v = parent_[v]) {
    if (v == MulticastTree::npos || !alive_[v]) return -1;
    ++d;
    if (d > static_cast<int>(parent_.size())) return -1;  // cycle guard
  }
  return d;
}

int ChurnTree::height_hops() const {
  int h = 0;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    if (alive_[i]) h = std::max(h, depth(i));
  }
  return h;
}

bool ChurnTree::valid() const {
  if (alive_count_ == 0) return root_ == MulticastTree::npos;
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    if (!alive_[i]) continue;
    const int d = depth(i);
    if (d < 0) return false;
    ++reachable;
  }
  return reachable == alive_count_;
}

}  // namespace emcast::overlay
