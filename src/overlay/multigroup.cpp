#include "overlay/multigroup.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace emcast::overlay {

const char* to_string(TreeScheme scheme) {
  switch (scheme) {
    case TreeScheme::Dsct: return "DSCT";
    case TreeScheme::Nice: return "NICE";
    case TreeScheme::CapacityAwareDsct: return "cap-aware DSCT";
    case TreeScheme::CapacityAwareNice: return "cap-aware NICE";
  }
  return "?";
}

MultiGroupNetwork::MultiGroupNetwork(const topology::AttachedNetwork& net,
                                     const MultiGroupConfig& config)
    : net_(&net), config_(config) {
  // Delay provider: the full matrix is O((routers + hosts)^2) memory and
  // build time, fine at 665 hosts and impossible at 10^6; networks that
  // opt in to compact delays get the exact router-level oracle instead.
  if (net.compact_host_delays) {
    oracle_ = std::make_shared<topology::HostDelayOracle>(net);
  } else {
    delays_ = std::make_shared<topology::DelayMatrix>(net.graph);
  }
  if (config.groups < 1) {
    throw std::invalid_argument("MultiGroupNetwork: groups < 1");
  }
  const std::size_t n = net.hosts.size();
  if (n < 2) throw std::invalid_argument("MultiGroupNetwork: too few hosts");

  std::vector<Member> members(n);
  std::vector<int> domain(n);
  for (std::size_t i = 0; i < n; ++i) {
    members[i] = Member{i, net.hosts[i]};
    domain[i] = static_cast<int>(net.attachment[i]);
  }
  RttFn rtt = [this](std::size_t a, std::size_t b) {
    return member_delay(a, b) * 2.0;
  };

  util::Rng rng(config.seed);
  trees_.reserve(static_cast<std::size_t>(config.groups));
  sources_.reserve(static_cast<std::size_t>(config.groups));
  // Shared fan-out budget for the capacity-aware schemes: the K trees draw
  // from the same per-host pool, which is what bounds the uplink load.
  std::vector<std::size_t> budget;
  const bool capacity_aware =
      config_.scheme == TreeScheme::CapacityAwareDsct ||
      config_.scheme == TreeScheme::CapacityAwareNice;
  if (capacity_aware) {
    CapacityAwareConfig probe;
    probe.utilization = config_.utilization;
    probe.host_capacity_factor = config_.host_capacity_factor;
    budget.assign(n, capacity_child_budget(probe, config_.groups));
  }
  for (int g = 0; g < config.groups; ++g) {
    const auto source = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    sources_.push_back(source);
    const std::uint64_t tree_seed = rng.next();
    switch (config_.scheme) {
      case TreeScheme::Dsct: {
        DsctConfig c{config_.k, tree_seed, 0, 0};
        trees_.push_back(build_dsct(members, domain, rtt, source, c));
        break;
      }
      case TreeScheme::Nice: {
        NiceConfig c{config_.k, tree_seed, 0, 0};
        trees_.push_back(build_nice(members, rtt, source, c));
        break;
      }
      case TreeScheme::CapacityAwareDsct: {
        CapacityAwareConfig c;
        c.utilization = config_.utilization;
        c.host_capacity_factor = config_.host_capacity_factor;
        c.seed = tree_seed;
        c.budget = &budget;
        trees_.push_back(
            build_capacity_aware_dsct(members, domain, rtt, source, c));
        break;
      }
      case TreeScheme::CapacityAwareNice: {
        CapacityAwareConfig c;
        c.utilization = config_.utilization;
        c.host_capacity_factor = config_.host_capacity_factor;
        c.seed = tree_seed;
        c.budget = &budget;
        trees_.push_back(build_capacity_aware_nice(members, rtt, source, c));
        break;
      }
    }
  }
}

std::size_t MultiGroupNetwork::delay_memory_bytes() const {
  if (oracle_) return oracle_->memory_bytes();
  const std::size_t n = delays_->size();
  return sizeof(topology::DelayMatrix) + n * n * sizeof(Time);
}

PartitionStats evaluate_partition(const MultiGroupNetwork& mg,
                                  const std::vector<std::uint32_t>& shard_of) {
  PartitionStats stats;
  const std::size_t n = mg.host_count();
  if (shard_of.size() != n) {
    throw std::invalid_argument("evaluate_partition: size mismatch");
  }
  std::uint32_t shards = 0;
  for (const std::uint32_t s : shard_of) shards = std::max(shards, s + 1);
  stats.shards = shards;
  // Per ordered pair (parent shard -> child shard), the minimum underlay
  // delay over the crossing tree edges; infinity marks a pair no edge
  // crosses.  min_cross_delay stays the global min over all pairs.
  stats.pair_min_delay.assign(static_cast<std::size_t>(shards) * shards,
                              kTimeInfinity);
  for (int g = 0; g < mg.groups(); ++g) {
    const MulticastTree& tree = mg.tree(g);
    for (std::size_t h = 0; h < tree.size(); ++h) {
      if (h == tree.root()) continue;
      const std::size_t p = tree.parent(h);
      ++stats.total_edges;
      if (shard_of[p] != shard_of[h]) {
        ++stats.cross_edges;
        const Time d = mg.member_delay(p, h);
        if (d < stats.min_cross_delay) stats.min_cross_delay = d;
        Time& pair =
            stats.pair_min_delay[shard_of[p] * shards + shard_of[h]];
        if (d < pair) pair = d;
      }
    }
  }
  std::vector<std::size_t> load(shards, 0);
  for (const std::uint32_t s : shard_of) ++load[s];
  for (const std::size_t l : load) {
    stats.max_shard_hosts = std::max(stats.max_shard_hosts, l);
  }
  return stats;
}

topology::HostPartition derive_partition(const MultiGroupNetwork& mg,
                                         std::size_t shards) {
  // Event load per host ~ deliveries it handles plus copies it forwards:
  // 1 (its own delivery, once per tree) + its children count per tree.
  const std::size_t n = mg.host_count();
  std::vector<double> weight(n, 0.0);
  for (int g = 0; g < mg.groups(); ++g) {
    const MulticastTree& tree = mg.tree(g);
    for (std::size_t h = 0; h < tree.size(); ++h) {
      weight[h] += 1.0 + static_cast<double>(tree.children(h).size());
    }
  }
  return topology::partition_by_attachment(mg.network(), shards, weight);
}

}  // namespace emcast::overlay
