#pragma once
// Hierarchical RTT-based clustering — the machinery shared by DSCT and
// NICE.  Starting from all members in the lowest layer, members are
// greedily grouped into clusters of a configurable size range; each cluster
// elects a core (the RTT medoid), cores form the next layer, and the
// process repeats until one member remains: the hierarchy root.
//
// Cluster sizes are drawn per cluster from [min_size, max_size] — the
// paper's s_ina / s_ine ∈ [k, 3k−1] with k = 3 — which is the randomness
// the paper blames for run-to-run height variation.

#include <cstddef>
#include <functional>
#include <vector>

#include "overlay/tree.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace emcast::overlay {

/// RTT oracle between two members (by member index).
using RttFn = std::function<Time(std::size_t, std::size_t)>;

struct ClusterConfig {
  std::size_t min_size = 3;   ///< k
  std::size_t max_size = 8;   ///< 3k−1
  /// Pick cluster seeds uniformly at random (NICE-style incremental joins)
  /// instead of deterministically by lowest index (DSCT-style ordered
  /// assignment within a located domain).
  bool random_seeds = false;
  /// Optional per-member forwarding budget (remaining child slots), shared
  /// across trees.  Capacity-aware schemes bound every host's *total*
  /// fan-out by ⌊C_host/ρ⌋ (Fig. 1); when set, core election prefers
  /// members with enough remaining budget and decrements it.  nullptr
  /// disables budgeting (the regulated schemes control traffic instead).
  std::vector<std::size_t>* budget = nullptr;
};

struct Cluster {
  std::vector<std::size_t> members;  ///< member indices (includes core)
  std::size_t core = 0;              ///< member index of the elected core
};

/// One clustering pass: partition `ids` into clusters of the configured
/// size and elect cores.  `ids` are member indices into the group.
std::vector<Cluster> cluster_once(const std::vector<std::size_t>& ids,
                                  const RttFn& rtt, const ClusterConfig& cfg,
                                  util::Rng& rng);

/// Result of a full hierarchy construction.
struct Hierarchy {
  /// layer[l] = clusters formed at layer l (layer 0 = lowest).
  std::vector<std::vector<Cluster>> layers;
  std::size_t top = 0;  ///< member index of the hierarchy root
  /// Number of layers including the singleton top layer — the paper's
  /// "tree layer number".
  int layer_count() const { return static_cast<int>(layers.size()) + 1; }
};

/// Build the full hierarchy over `ids` (must be non-empty).
Hierarchy build_hierarchy(const std::vector<std::size_t>& ids,
                          const RttFn& rtt, const ClusterConfig& cfg,
                          util::Rng& rng);

/// Convert a hierarchy to tree parent pointers: every non-core cluster
/// member's parent is its cluster core; a core's parent comes from the
/// next layer up.  Writes into `parent` (member-index space, npos = root).
void hierarchy_to_parents(const Hierarchy& h,
                          std::vector<std::size_t>& parent);

}  // namespace emcast::overlay
