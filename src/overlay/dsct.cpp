#include "overlay/dsct.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace emcast::overlay {

void reroot(std::vector<std::size_t>& parent, std::size_t new_root) {
  std::size_t current = new_root;
  std::size_t carried = MulticastTree::npos;
  while (current != MulticastTree::npos) {
    const std::size_t next = parent[current];
    parent[current] = carried;
    carried = current;
    current = next;
  }
}

MulticastTree build_dsct(std::vector<Member> members,
                         const std::vector<int>& domain, const RttFn& rtt,
                         std::size_t source, const DsctConfig& config) {
  const std::size_t n = members.size();
  if (n == 0) throw std::invalid_argument("build_dsct: no members");
  if (domain.size() != n) {
    throw std::invalid_argument("build_dsct: domain size mismatch");
  }
  if (source >= n) throw std::invalid_argument("build_dsct: bad source");

  util::Rng rng(config.seed);
  ClusterConfig cluster_cfg;
  cluster_cfg.min_size =
      config.min_size_override ? config.min_size_override : config.k;
  cluster_cfg.max_size = config.max_size_override ? config.max_size_override
                                                  : 3 * config.k - 1;
  cluster_cfg.random_seeds = false;  // ordered, location-coherent assignment
  cluster_cfg.budget = config.budget;

  // 1. Partition into local domains.
  std::map<int, std::vector<std::size_t>> domains;
  for (std::size_t i = 0; i < n; ++i) domains[domain[i]].push_back(i);

  std::vector<std::size_t> parent(n, MulticastTree::npos);

  // 2. Intra-domain hierarchies.
  std::vector<std::size_t> local_cores;
  int max_intra_layers = 0;
  for (auto& [id, ids] : domains) {
    (void)id;
    auto h = build_hierarchy(ids, rtt, cluster_cfg, rng);
    hierarchy_to_parents(h, parent);
    local_cores.push_back(h.top);
    max_intra_layers =
        std::max(max_intra_layers, static_cast<int>(h.layers.size()));
  }

  // 3. Inter-domain hierarchy over the local cores.
  int inter_layers = 0;
  std::size_t top = local_cores.front();
  if (local_cores.size() > 1) {
    auto h = build_hierarchy(local_cores, rtt, cluster_cfg, rng);
    hierarchy_to_parents(h, parent);
    top = h.top;
    inter_layers = static_cast<int>(h.layers.size());
  }
  (void)top;

  // The construction's layer count: intra layers + inter layers + the
  // singleton top layer (the paper counts L1..Ll inclusive).
  const int layers = max_intra_layers + inter_layers + 1;

  // 4. Re-root at the source member.
  reroot(parent, source);
  return MulticastTree(std::move(members), std::move(parent), source, layers);
}

}  // namespace emcast::overlay
