#include "overlay/metrics.hpp"

#include <algorithm>

#include "topology/shortest_path.hpp"

namespace emcast::overlay {

TreeMetrics measure_tree(const MulticastTree& tree,
                         const MultiGroupNetwork& net) {
  TreeMetrics m;
  m.hierarchy_layers = tree.hierarchy_layers();
  m.height_hops = tree.height_hops();
  m.max_fanout = tree.max_fanout();

  util::OnlineStats depth_stats;
  util::OnlineStats prop_stats;
  // Propagation cost accumulates down the tree: cost(child) = cost(parent)
  // + underlay delay of the overlay edge.
  std::vector<Time> cost(tree.size(), 0.0);
  for (std::size_t i : tree.bfs_order()) {
    if (i != tree.root()) {
      const std::size_t p = tree.parent(i);
      cost[i] = cost[p] + net.member_delay(p, i);
      depth_stats.add(tree.depth(i));
      prop_stats.add(cost[i]);
    }
  }
  m.mean_depth = depth_stats.mean();
  m.max_path_propagation = prop_stats.count() ? prop_stats.max() : 0.0;
  m.mean_path_propagation = prop_stats.mean();
  return m;
}

LinkStress measure_link_stress(const MulticastTree& tree,
                               const topology::Graph& graph) {
  LinkStress stress;
  // Cache shortest-path trees per distinct parent node.
  std::map<NodeId, topology::ShortestPathTree> sp_cache;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (i == tree.root()) continue;
    const NodeId from = tree.member(tree.parent(i)).node;
    const NodeId to = tree.member(i).node;
    auto it = sp_cache.find(from);
    if (it == sp_cache.end()) {
      it = sp_cache.emplace(from, topology::dijkstra(graph, from)).first;
    }
    const auto path = topology::extract_path(it->second, from, to);
    for (std::size_t h = 1; h < path.size(); ++h) {
      auto key = std::minmax(path[h - 1], path[h]);
      ++stress.per_link[{key.first, key.second}];
    }
  }
  util::OnlineStats s;
  for (const auto& [link, count] : stress.per_link) {
    (void)link;
    s.add(static_cast<double>(count));
    stress.max_stress = std::max(stress.max_stress, count);
  }
  stress.mean_stress = s.mean();
  return stress;
}

}  // namespace emcast::overlay
