#pragma once
// NICE-style tree construction ([8]): the same hierarchical clustering as
// DSCT but *without* the location-aware domain partition — clusters are
// formed over the whole member set from randomly-seeded incremental joins,
// which is why NICE paths criss-cross the backbone more and its worst-case
// delays sit above DSCT's in Fig. 6.

#include <cstdint>

#include "overlay/cluster_builder.hpp"
#include "overlay/tree.hpp"

namespace emcast::overlay {

struct NiceConfig {
  std::size_t k = 3;        ///< minimum cluster size
  std::uint64_t seed = 7;
  std::size_t min_size_override = 0;
  std::size_t max_size_override = 0;
  /// Optional shared per-member fan-out budget (see ClusterConfig::budget).
  std::vector<std::size_t>* budget = nullptr;
};

MulticastTree build_nice(std::vector<Member> members, const RttFn& rtt,
                         std::size_t source, const NiceConfig& config);

}  // namespace emcast::overlay
