#pragma once
// The regulated end host — the operational unit the paper's Adaptive
// Control Algorithm runs on.  A host terminates K̂ input flows (one per
// group it joined), regulates them, multiplexes them onto its output link
// of capacity C, and hands the result to a sink (the next overlay hop or
// the local application).
//
// Control models (Section III's algorithm):
//   SigmaRho       — every flow through its own (σᵢ, ρᵢ) token bucket,
//                    then the shared work-conserving MUX.
//   SigmaRhoLambda — the (σ, ρ, λ) regulator bank (TDMA turn-taking),
//                    then the MUX (which it never congests).
//   Adaptive       — measure ρ̄ = Σ input rates / C each control interval;
//                    use SigmaRho while ρ̄ < ρ*, switch to SigmaRhoLambda
//                    when ρ̄ ≥ ρ* (with a small hysteresis band to avoid
//                    flapping on VBR noise).

#include <memory>
#include <optional>
#include <vector>

#include "core/lambda_regulator.hpp"
#include "core/mux.hpp"
#include "core/rate_estimator.hpp"
#include "core/token_bucket_regulator.hpp"
#include "sim/context.hpp"
#include "sim/tracer.hpp"
#include "traffic/flow_spec.hpp"
#include "util/types.hpp"

namespace emcast::core {

enum class ControlMode { SigmaRho, SigmaRhoLambda, Adaptive };

struct AdaptiveHostConfig {
  std::vector<traffic::FlowSpec> flows;
  Rate capacity = 0;
  ControlMode mode = ControlMode::Adaptive;

  /// Total-utilisation switch point ρ*·K (in (0,1)).  0 = derive from the
  /// closed forms of Theorems 3/4 based on flow homogeneity.
  double threshold_utilization = 0.0;

  /// Seconds between adaptive-control decisions.  0 = auto (max of the
  /// regulator period and 100 ms).
  Time control_interval = 0.0;

  /// Rate-measurement window.  Long enough to span several burst cycles of
  /// the paper's VBR sources, so the adaptive decision does not flap on
  /// talkspurt/GoP noise.
  Time estimator_window = 2.0;
  double hysteresis = 0.02;      ///< relative dead band around the threshold

  /// Service discipline of the general MUX.  The experiments use
  /// PriorityLifoLowest to realise the adversarial overtaking the paper's
  /// Dg bound describes; PriorityFifo gives the per-class (milder) bound.
  MuxDiscipline mux_discipline = MuxDiscipline::PriorityFifo;

  /// σ inflation for the (σ, ρ, λ) schedule.  Sizing the working periods
  /// for exactly the declared σ leaves the TDMA frame with zero margin: a
  /// burst that grazes σ then drains only at the rate headroom, taking
  /// many periods.  A 25% longer slot clears it within one turn at the
  /// cost of a proportionally longer vacation (Lemma 1's bound scales the
  /// same way, so the theory still applies with σ' = margin·σ).
  double lambda_sigma_margin = 1.25;

  /// Phase offset of the (σ, ρ, λ) schedule (see LambdaRegulatorBank).
  Time lambda_epoch_offset = 0.0;
};

class AdaptiveHost {
 public:
  using Sink = sim::PacketFn;

  /// `ctx` is the engine-agnostic kernel handle (a plain Simulator
  /// converts implicitly).  The whole pipeline — regulators, bank, MUX,
  /// control ticks — schedules only on this kernel, which is what lets a
  /// sharded experiment own each host's pipeline on exactly one shard.
  AdaptiveHost(sim::SimContext ctx, AdaptiveHostConfig config, Sink sink);

  /// Submit a packet of one of the configured flows.  Records the hop
  /// arrival time for the per-hop delay statistic.
  void offer(sim::Packet p);

  /// Regulation model currently in force (never Adaptive).
  ControlMode active_model() const { return active_; }

  /// Measured total utilisation Σ rates / C over the estimator window,
  /// evaluated now (available in every mode, not just Adaptive).
  double measured_utilization() const;

  /// The switch threshold in force (total utilisation).
  double threshold() const { return threshold_; }

  std::uint64_t mode_switches() const { return mode_switches_; }

  /// Simulated time of the most recent mode switch, -infinity if the host
  /// never switched.  The churn experiments read this after each repair
  /// to measure how long the adaptive controller takes to re-converge on
  /// the post-repair traffic mix.
  Time last_mode_switch_time() const { return last_mode_switch_; }

  /// Per-hop delay statistics (arrival at host → departure from MUX).
  const sim::DelayTracer& delay() const { return tracer_; }

  /// Set the warm-up horizon for delay statistics (see DelayTracer).
  void set_warmup(Time t);

  /// Whole-pipeline footprint: self, regulators, bank, estimators, queue
  /// contents and tracer heap.  Feeds the per-host memory budget of the
  /// scale experiments (approximate: allocator overhead is not priced).
  std::size_t memory_bytes() const;

  const AdaptiveHostConfig& config() const { return config_; }

 private:
  void on_mux_output(sim::Packet p);
  void control_tick();
  void activate(ControlMode m);
  std::size_t flow_index(FlowId id) const;

  sim::SimContext ctx_;
  AdaptiveHostConfig config_;
  Sink sink_;
  double threshold_;
  Time control_interval_;

  Mux mux_;
  std::vector<std::unique_ptr<TokenBucketRegulator>> buckets_;
  std::unique_ptr<LambdaRegulatorBank> bank_;
  std::vector<RateEstimator> estimators_;

  ControlMode active_ = ControlMode::SigmaRho;
  double last_utilization_ = 0.0;
  std::uint64_t mode_switches_ = 0;
  Time last_mode_switch_ = -kTimeInfinity;
  sim::DelayTracer tracer_;
};

}  // namespace emcast::core
