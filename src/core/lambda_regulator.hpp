#pragma once
// The (σ, ρ, λ) regulator bank — the paper's novel mechanism.
//
// One bank regulates all K flows entering an end host.  Each flow i cycles
// between an on-state (working period Wᵢ, during which its backlog drains
// work-conservingly at the full line rate C) and an off-state (vacation
// Vᵢ, during which its output is blocked).  The bank staggers the K
// working periods with a TurnSchedule so at most one flow transmits at any
// instant — simultaneous bursts can no longer collide at the multiplexer,
// which is where the high-load delay win comes from (Theorems 5/6).
//
// Packet service is non-preemptive: a packet that starts inside its slot
// may finish past the boundary (an overrun of at most one transmission).
// The next slot then starts at the completion instant but keeps its *full*
// working period, so no slot's service budget is stolen; the accumulated
// shift (≤ one packet per slot) is absorbed by the idle tail of the
// period, which the schedule inflates to guarantee (min_idle), keeping
// every period aligned to the fixed epoch grid.

#include <vector>

#include "core/turn_schedule.hpp"
#include "sim/context.hpp"
#include "sim/fifo_queue.hpp"
#include "sim/packet.hpp"
#include "traffic/flow_spec.hpp"
#include "util/types.hpp"

namespace emcast::core {

class LambdaRegulatorBank {
 public:
  using Sink = sim::PacketFn;

  /// Flow order defines slot order.  `capacity` is the host output rate C.
  /// `max_packet_bits` bounds a single packet (used to size the idle tail
  /// that absorbs slot overruns).
  /// `epoch_offset` shifts the period grid: slot 0 of each period starts
  /// at (resume time + offset + m·P).  Multicast deployments stagger the
  /// offset by tree depth so a packet released in its flow's working
  /// period arrives inside the same working period downstream and rides
  /// the TDMA wave instead of paying a vacation per hop.
  LambdaRegulatorBank(sim::SimContext ctx,
                      std::vector<traffic::FlowSpec> flows, Rate capacity,
                      Sink sink, Bits max_packet_bits = 12000.0,
                      Time epoch_offset = 0.0);

  /// Submit a packet of flow `flows[i]` (matched by FlowSpec::id).
  void offer(sim::Packet p);

  const TurnSchedule& schedule() const { return schedule_; }
  Rate capacity() const { return capacity_; }

  Bits backlog_bits(std::size_t i) const { return queues_[i].backlog_bits(); }
  Bits total_backlog_bits() const;
  std::uint64_t forwarded() const { return forwarded_; }

  /// Stop the slot rotation (used when the adaptive host switches away
  /// from (σ, ρ, λ) mode).  resume() re-anchors the schedule at now.
  void pause();
  void resume();
  bool running() const { return running_; }

  /// Remove and return all queued packets (in per-flow FIFO order).  Used
  /// by the adaptive host to migrate backlog when switching models.
  std::vector<sim::Packet> drain();

  /// Self plus owned heap (memory-budget convention, see core::Mux; the
  /// small TurnSchedule heap is priced inside sizeof via its slot count
  /// approximation being negligible and is ignored).
  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this) +
                        flows_.capacity() * sizeof(traffic::FlowSpec) +
                        queues_.capacity() * sizeof(sim::FifoQueue);
    for (const auto& q : queues_) bytes += q.heap_bytes();
    return bytes;
  }

 private:
  std::size_t flow_index(FlowId id) const;
  void begin_period(Time start);
  void begin_slot(Time start);
  void advance();
  void serve_current();

  sim::SimContext ctx_;
  Time epoch_offset_ = 0.0;
  std::vector<traffic::FlowSpec> flows_;
  Rate capacity_;
  Sink sink_;
  TurnSchedule schedule_;
  std::vector<sim::FifoQueue> queues_;

  Time period_start_ = 0;        ///< fixed-grid start of the current period
  std::size_t current_slot_ = 0; ///< flow_count() = idle tail
  Time slot_end_ = 0;            ///< absolute end of the current slot
  bool busy_ = false;            ///< a packet is on the wire
  bool pending_advance_ = false; ///< boundary passed while transmitting
  bool running_ = false;
  sim::EventHandle boundary_event_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace emcast::core
