#include "core/rate_estimator.hpp"

#include <cmath>
#include <stdexcept>

namespace emcast::core {

RateEstimator::RateEstimator(Time window, std::size_t bins)
    : window_(window),
      bin_width_(window / static_cast<double>(bins)),
      bins_(bins, 0) {
  if (window <= 0 || bins == 0) {
    throw std::invalid_argument("RateEstimator: bad window/bins");
  }
}

std::size_t RateEstimator::bin_of(Time t) const {
  const auto global = static_cast<long long>(std::floor(t / bin_width_));
  return static_cast<std::size_t>(((global % static_cast<long long>(bins_.size())) +
                                   static_cast<long long>(bins_.size())) %
                                  static_cast<long long>(bins_.size()));
}

void RateEstimator::advance_to(Time t) const {
  const auto target = static_cast<long long>(std::floor(t / bin_width_));
  if (target <= current_bin_) return;
  const auto steps = target - current_bin_;
  const auto n = static_cast<long long>(bins_.size());
  // Clear every bin we rotate past (cap at one full rotation).
  for (long long s = 1; s <= std::min(steps, n); ++s) {
    const auto idx = static_cast<std::size_t>((((current_bin_ + s) % n) + n) % n);
    total_ -= bins_[idx];
    bins_[idx] = 0;
  }
  current_bin_ = target;
}

void RateEstimator::record(Time t, Bits bits) {
  advance_to(t);
  bins_[bin_of(t)] += bits;
  total_ += bits;
}

Rate RateEstimator::rate_at(Time t) const {
  advance_to(t);
  // Until a full window has elapsed, normalise by the elapsed time to avoid
  // under-reporting during start-up.
  const Time effective = std::min(t, window_);
  if (effective <= 0) return 0.0;
  return total_ / effective;
}

}  // namespace emcast::core
