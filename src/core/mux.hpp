#pragma once
// The general MUX of Sections III–IV: a work-conserving multiplexer that
// merges the flows arriving on an end host's input links into its single
// output link of capacity C.  "General" means a packet of one flow may
// have priority over another's — we implement strict priority classes with
// FIFO order inside a class (priority 0 = highest); with all packets in
// one class this degenerates to plain FIFO, the configuration used by the
// paper's experiments.

#include <array>

#include "sim/fifo_queue.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace emcast::core {

/// Service order inside the MUX.  Both are work-conserving, so both are
/// "general MUXes" in the paper's sense; they differ in how adversarial
/// the overtaking is:
///   PriorityFifo        — strict priority across classes, FIFO inside a
///                         class (realises the per-class Cruz bound).
///   PriorityLifoLowest  — strict priority across classes, LIFO inside the
///                         *lowest occupied* class: a tagged packet can be
///                         overtaken even by its own flow's later packets,
///                         which is the adversary behind the paper's
///                         Dg = Σσ/(1−Σρ) worst case.
enum class MuxDiscipline { PriorityFifo, PriorityLifoLowest };

class Mux {
 public:
  using Sink = sim::PacketFn;
  static constexpr std::size_t kPriorityClasses = 4;

  Mux(sim::Simulator& sim, Rate capacity, Sink sink,
      MuxDiscipline discipline = MuxDiscipline::PriorityFifo);

  /// Submit a packet; service starts immediately when the server is idle
  /// (work conservation).
  void offer(sim::Packet p);

  Rate capacity() const { return capacity_; }
  bool busy() const { return busy_; }
  Bits backlog_bits() const;
  Bits peak_backlog_bits() const;
  std::uint64_t served() const { return served_; }

  MuxDiscipline discipline() const { return discipline_; }

 private:
  void start_service();
  sim::FifoQueue* highest_nonempty();
  /// True when `q` is the lowest-priority class with any packets and a
  /// higher class exists or existed — the class LIFO service applies to.
  bool is_lowest_occupied(const sim::FifoQueue* q) const;

  sim::Simulator& sim_;
  Rate capacity_;
  Sink sink_;
  MuxDiscipline discipline_;
  std::array<sim::FifoQueue, kPriorityClasses> classes_;
  bool busy_ = false;
  Bits peak_backlog_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace emcast::core
