#pragma once
// The general MUX of Sections III–IV: a work-conserving multiplexer that
// merges the flows arriving on an end host's input links into its single
// output link of capacity C.  "General" means a packet of one flow may
// have priority over another's — we implement strict priority classes with
// FIFO order inside a class (priority 0 = highest); with all packets in
// one class this degenerates to plain FIFO, the configuration used by the
// paper's experiments.

#include <array>

#include "sim/context.hpp"
#include "sim/fifo_queue.hpp"
#include "sim/packet.hpp"
#include "util/types.hpp"

namespace emcast::core {

/// Service order inside the MUX.  Both are work-conserving, so both are
/// "general MUXes" in the paper's sense; they differ in how adversarial
/// the overtaking is:
///   PriorityFifo        — strict priority across classes, FIFO inside a
///                         class (realises the per-class Cruz bound).
///   PriorityLifoLowest  — strict priority across classes, LIFO inside the
///                         *lowest occupied* class: a tagged packet can be
///                         overtaken even by its own flow's later packets,
///                         which is the adversary behind the paper's
///                         Dg = Σσ/(1−Σρ) worst case.
///
/// Every service decision — class selection, the lowest-occupied test and
/// the LIFO pick — is deliberately a function of (decision time, queue
/// content): a packet enqueued at exactly the service-decision instant is
/// not yet visible to that decision (FifoQueue::has_entry_before /
/// pop_newest_before; a decision finding only same-instant packets falls
/// back to priority-FIFO, which converges with the engine where the tied
/// arrival started service itself).  With
/// identical packet sizes and a shared capacity C, upstream MUXs emit
/// back-to-back trains whose arrivals land on the same float-time grid as
/// local service completions, so such ties are structural, not
/// measure-zero — and a pick based on raw event order would make the
/// model's output depend on kernel tie-breaking, which a sharded engine
/// cannot reproduce (cross-shard arrivals are drain-scheduled).  FIFO
/// service converges under those ties without any rule.
enum class MuxDiscipline { PriorityFifo, PriorityLifoLowest };

class Mux {
 public:
  using Sink = sim::PacketFn;
  static constexpr std::size_t kPriorityClasses = 4;

  /// `ctx` is the engine-agnostic kernel handle (a plain Simulator
  /// converts implicitly); the MUX schedules only locally through it.
  Mux(sim::SimContext ctx, Rate capacity, Sink sink,
      MuxDiscipline discipline = MuxDiscipline::PriorityFifo);

  /// Submit a packet; service starts immediately when the server is idle
  /// (work conservation).
  void offer(sim::Packet p);

  Rate capacity() const { return capacity_; }
  bool busy() const { return busy_; }
  Bits backlog_bits() const;
  Bits peak_backlog_bits() const;
  std::uint64_t served() const { return served_; }

  MuxDiscipline discipline() const { return discipline_; }

  /// Footprint: self plus queued entries (heap).  Convention across the
  /// pipeline classes: memory_bytes() = sizeof(*this) + owned heap;
  /// composite owners subtract sizeof of by-value members they already
  /// counted inside their own sizeof.
  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const auto& q : classes_) bytes += q.heap_bytes();
    return bytes;
  }

 private:
  void start_service();
  sim::FifoQueue* highest_nonempty();
  /// Highest-priority class holding a packet enqueued strictly before
  /// `now` (the decision's visibility rule); null when nothing qualifies.
  sim::FifoQueue* highest_visible(Time now);
  /// True when `q` is the lowest-priority class with visible packets —
  /// the class LIFO service applies to.
  bool is_lowest_visible(const sim::FifoQueue* q, Time now) const;

  sim::SimContext ctx_;
  Rate capacity_;
  Sink sink_;
  MuxDiscipline discipline_;
  std::array<sim::FifoQueue, kPriorityClasses> classes_;
  bool busy_ = false;
  Bits peak_backlog_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace emcast::core
