#pragma once
// The turn-taking schedule of the adaptive control algorithm (Section III).
//
// Theorem 1 chooses per-flow bursts σ*ᵢ = ρ̂ᵢ(1−ρ̂ᵢ)·min_j σ̂ⱼ/(ρ̂ⱼ(1−ρ̂ⱼ))
// precisely so that every flow's regulator period λᵢσ*ᵢ/ρᵢ equals the same
// common value P = min_j σ̂ⱼ/(ρ̂ⱼ(1−ρ̂ⱼ)).  With that choice, the working
// period of flow i is Wᵢ = σ̂*ᵢ/(1−ρ̂ᵢ) = ρ̂ᵢ·P, and the stability condition
// Σρ̂ᵢ ≤ 1 guarantees ΣWᵢ ≤ P: the K working periods tile one period with
// (possibly) an idle remainder — a TDMA frame in which exactly one
// regulator is in its on-state at any time, which is what "each regulator
// works for its flow in turn" means operationally.

#include <vector>

#include "traffic/flow_spec.hpp"
#include "util/types.hpp"

namespace emcast::core {

class TurnSchedule {
 public:
  /// Build a schedule for `flows` sharing an output of `capacity` bits/s.
  /// Requires every ρ̂ᵢ ∈ (0,1) and Σρ̂ᵢ ≤ 1 (stability condition).
  ///
  /// `min_idle` forces the idle tail of the period to be at least this
  /// long by inflating the period beyond the natural
  /// min_j σ̂ⱼ/(ρ̂ⱼ(1−ρ̂ⱼ)) when necessary.  The regulator bank uses it to
  /// absorb non-preemptive slot overruns (at most one packet per slot)
  /// without drifting off the period grid.
  TurnSchedule(const std::vector<traffic::FlowSpec>& flows, Rate capacity,
               Time min_idle = 0.0);

  std::size_t flow_count() const { return slots_.size(); }
  Time period() const { return period_; }

  /// Working period Wᵢ (slot length) of flow index i [s].
  Time slot_length(std::size_t i) const { return slots_[i].length; }

  /// Offset of flow i's slot within the period [s].
  Time slot_offset(std::size_t i) const { return slots_[i].offset; }

  /// Vacation Vᵢ = P − Wᵢ (the paper's σᵢ/ρᵢ under σ*-synchronisation).
  Time vacation(std::size_t i) const { return period_ - slots_[i].length; }

  /// σ*ᵢ in bits (the burst a slot can carry at line rate).
  Bits sigma_star_bits(std::size_t i) const { return slots_[i].sigma_star; }

  /// Idle tail of the period after the last slot [s]; zero at Σρ̂ᵢ = 1.
  Time idle_tail() const;

  /// Which flow's slot (if any) is active at time-in-period φ ∈ [0, P).
  /// Returns flow_count() during the idle tail.
  std::size_t slot_at(Time phase) const;

  /// Start of the next slot of flow i at or after absolute time t, given
  /// the schedule epoch (time of a period start).
  Time next_slot_start(std::size_t i, Time t, Time epoch) const;

 private:
  struct Slot {
    Time offset;
    Time length;
    Bits sigma_star;
  };
  Time period_;
  std::vector<Slot> slots_;
};

}  // namespace emcast::core
