#include "core/mux.hpp"

#include <algorithm>
#include <stdexcept>

namespace emcast::core {

Mux::Mux(sim::SimContext ctx, Rate capacity, Sink sink,
         MuxDiscipline discipline)
    : ctx_(ctx),
      capacity_(capacity),
      sink_(std::move(sink)),
      discipline_(discipline) {
  if (capacity <= 0) throw std::invalid_argument("Mux: capacity <= 0");
}

Bits Mux::backlog_bits() const {
  Bits sum = 0;
  for (const auto& q : classes_) sum += q.backlog_bits();
  return sum;
}

Bits Mux::peak_backlog_bits() const { return peak_backlog_; }

void Mux::offer(sim::Packet p) {
  const auto cls = std::min<std::size_t>(p.priority, kPriorityClasses - 1);
  classes_[cls].push(std::move(p), ctx_.now());
  peak_backlog_ = std::max(peak_backlog_, backlog_bits());
  if (!busy_) start_service();
}

sim::FifoQueue* Mux::highest_nonempty() {
  for (auto& q : classes_) {
    if (!q.empty()) return &q;
  }
  return nullptr;
}

sim::FifoQueue* Mux::highest_visible(Time now) {
  for (auto& q : classes_) {
    if (q.has_entry_before(now)) return &q;
  }
  return nullptr;
}

bool Mux::is_lowest_visible(const sim::FifoQueue* q, Time now) const {
  for (auto it = classes_.rbegin(); it != classes_.rend(); ++it) {
    if (it->has_entry_before(now)) return &*it == q;
  }
  return false;
}

void Mux::start_service() {
  // Every occupancy question this decision asks — which class to serve,
  // whether the served class is the lowest occupied one, which packet the
  // LIFO pick takes — uses only packets enqueued strictly before now
  // (tie-robust; see MuxDiscipline).  A packet arriving at exactly this
  // instant is not yet visible, so the decision is identical whether the
  // tied arrival event executed before or after it.  When nothing is
  // visible but the queues are not empty (only same-instant arrivals in
  // flight), fall back to plain priority-FIFO over the raw occupancy:
  // that serves the tied packet exactly like the engine where the
  // arrival's own offer() found the server idle and started service.
  const Time now = ctx_.now();
  sim::FifoQueue* q = highest_visible(now);
  bool lifo = false;
  if (q != nullptr) {
    lifo = discipline_ == MuxDiscipline::PriorityLifoLowest &&
           is_lowest_visible(q, now);
  } else {
    q = highest_nonempty();
    if (q == nullptr) return;
  }
  busy_ = true;
  // Non-preemptive: the packet chosen now completes its transmission even
  // if higher-priority (or, under LIFO, newer) packets arrive meanwhile.
  sim::Packet p = lifo ? q->pop_newest_before(now) : q->pop();
  const Time tx = p.size / capacity_;
  ctx_.schedule_in(tx, [this, p = std::move(p)]() mutable {
    ++served_;
    sink_(std::move(p));
    busy_ = false;
    start_service();
  });
}

}  // namespace emcast::core
