#include "core/mux.hpp"

#include <algorithm>
#include <stdexcept>

namespace emcast::core {

Mux::Mux(sim::Simulator& sim, Rate capacity, Sink sink,
         MuxDiscipline discipline)
    : sim_(sim),
      capacity_(capacity),
      sink_(std::move(sink)),
      discipline_(discipline) {
  if (capacity <= 0) throw std::invalid_argument("Mux: capacity <= 0");
}

Bits Mux::backlog_bits() const {
  Bits sum = 0;
  for (const auto& q : classes_) sum += q.backlog_bits();
  return sum;
}

Bits Mux::peak_backlog_bits() const { return peak_backlog_; }

void Mux::offer(sim::Packet p) {
  const auto cls = std::min<std::size_t>(p.priority, kPriorityClasses - 1);
  classes_[cls].push(std::move(p));
  peak_backlog_ = std::max(peak_backlog_, backlog_bits());
  if (!busy_) start_service();
}

sim::FifoQueue* Mux::highest_nonempty() {
  for (auto& q : classes_) {
    if (!q.empty()) return &q;
  }
  return nullptr;
}

bool Mux::is_lowest_occupied(const sim::FifoQueue* q) const {
  for (auto it = classes_.rbegin(); it != classes_.rend(); ++it) {
    if (!it->empty()) return &*it == q;
  }
  return false;
}

void Mux::start_service() {
  sim::FifoQueue* q = highest_nonempty();
  if (q == nullptr) return;
  busy_ = true;
  const bool lifo = discipline_ == MuxDiscipline::PriorityLifoLowest &&
                    is_lowest_occupied(q);
  // Non-preemptive: the packet chosen now completes its transmission even
  // if higher-priority (or, under LIFO, newer) packets arrive meanwhile.
  sim::Packet p = lifo ? q->pop_newest() : q->pop();
  const Time tx = p.size / capacity_;
  sim_.schedule_in(tx, [this, p = std::move(p)]() mutable {
    ++served_;
    sink_(std::move(p));
    busy_ = false;
    start_service();
  });
}

}  // namespace emcast::core
