#include "core/lambda_regulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emcast::core {

namespace {
constexpr Time kTinyGuard = 1e-9;
}  // namespace

namespace {
/// Slot order: stable sort by priority class (0 first).  The paper's
/// Section VII extension — priority flows take their working periods
/// earlier in each regulator period, so their worst wait after a vacation
/// is shortest.
std::vector<traffic::FlowSpec> priority_ordered(
    std::vector<traffic::FlowSpec> flows) {
  std::stable_sort(flows.begin(), flows.end(),
                   [](const traffic::FlowSpec& a, const traffic::FlowSpec& b) {
                     return a.priority < b.priority;
                   });
  return flows;
}
}  // namespace

LambdaRegulatorBank::LambdaRegulatorBank(sim::SimContext ctx,
                                         std::vector<traffic::FlowSpec> flows,
                                         Rate capacity, Sink sink,
                                         Bits max_packet_bits,
                                         Time epoch_offset)
    : ctx_(ctx),
      epoch_offset_(epoch_offset),
      flows_(priority_ordered(std::move(flows))),
      capacity_(capacity),
      sink_(std::move(sink)),
      schedule_(flows_, capacity),
      queues_(flows_.size()) {
  // Slot overruns are absorbed by the idle tail when present and by
  // re-anchoring the period grid otherwise (advance() below); the drift
  // this introduces is at most ~half a packet per slot per period, well
  // inside the σ-margin the adaptive host configures.  max_packet_bits is
  // kept for API stability (a future strict-grid mode would need it).
  (void)max_packet_bits;
  resume();
}

std::size_t LambdaRegulatorBank::flow_index(FlowId id) const {
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].id == id) return i;
  }
  throw std::invalid_argument("LambdaRegulatorBank: unknown flow id");
}

Bits LambdaRegulatorBank::total_backlog_bits() const {
  Bits sum = 0;
  for (const auto& q : queues_) sum += q.backlog_bits();
  return sum;
}

void LambdaRegulatorBank::offer(sim::Packet p) {
  const std::size_t i = flow_index(p.flow);
  queues_[i].push(std::move(p));
  if (running_ && current_slot_ == i) serve_current();
}

void LambdaRegulatorBank::pause() {
  running_ = false;
  pending_advance_ = false;
  boundary_event_.cancel();
}

std::vector<sim::Packet> LambdaRegulatorBank::drain() {
  std::vector<sim::Packet> out;
  for (auto& q : queues_) {
    while (!q.empty()) out.push_back(q.pop());
  }
  return out;
}

void LambdaRegulatorBank::resume() {
  if (running_) return;
  running_ = true;
  begin_period(ctx_.now() + epoch_offset_);
}

void LambdaRegulatorBank::begin_period(Time start) {
  period_start_ = start;
  current_slot_ = 0;
  begin_slot(std::max(start, ctx_.now()));
}

void LambdaRegulatorBank::begin_slot(Time start) {
  // The slot keeps its full working period even when its start was shifted
  // by a predecessor's overrun; the idle tail absorbs the shift.
  slot_end_ = start + schedule_.slot_length(current_slot_);
  boundary_event_ = ctx_.schedule_at(
      std::max(slot_end_, ctx_.now() + kTinyGuard), [this] {
        if (!running_) return;
        if (busy_) {
          pending_advance_ = true;  // completion will advance
        } else {
          advance();
        }
      });
  serve_current();
}

void LambdaRegulatorBank::advance() {
  pending_advance_ = false;
  ++current_slot_;
  if (current_slot_ < schedule_.flow_count()) {
    begin_slot(std::max(ctx_.now(),
                        period_start_ + schedule_.slot_offset(current_slot_)));
    return;
  }
  // Idle tail: wait for the next fixed-grid period boundary.  min_idle
  // guarantees the accumulated overrun shift fits before it; re-anchor in
  // the (theoretically impossible) case it does not.
  Time next = period_start_ + schedule_.period();
  if (next <= ctx_.now()) next = ctx_.now() + kTinyGuard;
  boundary_event_ = ctx_.schedule_at(next, [this, next] {
    if (running_) begin_period(next);
  });
}

void LambdaRegulatorBank::serve_current() {
  if (!running_ || busy_) return;
  if (current_slot_ >= schedule_.flow_count()) return;  // idle tail
  auto& q = queues_[current_slot_];
  if (q.empty()) return;
  const Time now = ctx_.now();
  if (now + kTinyGuard >= slot_end_) return;  // slot is over
  const Time tx = q.front()->size / capacity_;
  busy_ = true;
  // Capture the slot index: the completion may land after the boundary
  // fired, so the pop must target the queue that was being served.
  const std::size_t serving = current_slot_;
  ctx_.schedule_in(tx, [this, serving] {
    busy_ = false;
    auto& queue = queues_[serving];
    if (!queue.empty()) {
      ++forwarded_;
      sink_(queue.pop());
    }
    if (pending_advance_) {
      advance();
    } else {
      serve_current();
    }
  });
}

}  // namespace emcast::core
