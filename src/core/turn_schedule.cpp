#include "core/turn_schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace emcast::core {

TurnSchedule::TurnSchedule(const std::vector<traffic::FlowSpec>& flows,
                           Rate capacity, Time min_idle) {
  if (flows.empty()) throw std::invalid_argument("TurnSchedule: no flows");
  double sum_rho = 0.0;
  double min_period = kTimeInfinity;
  for (const auto& f : flows) {
    const auto [sig, rho] = f.normalized(capacity);
    if (!(rho > 0.0 && rho < 1.0)) {
      throw std::invalid_argument("TurnSchedule: ρ̂ must be in (0,1)");
    }
    if (sig <= 0.0) throw std::invalid_argument("TurnSchedule: σ must be > 0");
    sum_rho += rho;
    min_period = std::min(min_period, sig / (rho * (1.0 - rho)));
  }
  if (sum_rho > 1.0 + 1e-9) {
    throw std::invalid_argument("TurnSchedule: stability Σρ̂ ≤ 1 violated");
  }
  period_ = min_period;
  if (min_idle > 0.0) {
    const double slack = 1.0 - std::min(sum_rho, 1.0 - 1e-6);
    period_ = std::max(period_, min_idle / slack);
  }
  slots_.reserve(flows.size());
  Time offset = 0.0;
  for (const auto& f : flows) {
    const auto [sig, rho] = f.normalized(capacity);
    (void)sig;
    const Time w = rho * period_;  // Wᵢ = σ̂*ᵢ/(1−ρ̂ᵢ) = ρ̂ᵢ·P
    const Bits sigma_star = rho * (1.0 - rho) * period_ * capacity;
    slots_.push_back(Slot{offset, w, sigma_star});
    offset += w;
  }
}

Time TurnSchedule::idle_tail() const {
  const auto& last = slots_.back();
  return period_ - (last.offset + last.length);
}

std::size_t TurnSchedule::slot_at(Time phase) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (phase >= slots_[i].offset &&
        phase < slots_[i].offset + slots_[i].length) {
      return i;
    }
  }
  return slots_.size();
}

Time TurnSchedule::next_slot_start(std::size_t i, Time t, Time epoch) const {
  const Time rel = t - epoch;
  const double periods = std::floor(rel / period_);
  Time start = epoch + periods * period_ + slots_[i].offset;
  if (start < t - 1e-12) start += period_;
  return start;
}

}  // namespace emcast::core
