#pragma once
// The classical (σ, ρ) regulator of Cruz [15-16]: a token bucket of depth σ
// bits refilled at ρ bits/s.  Traffic conforming to (σ, ρ) passes through
// untouched; excess bursts are buffered and released as tokens accrue, so
// the output always satisfies R_out ~ (σ, ρ).

#include "sim/context.hpp"
#include "sim/fifo_queue.hpp"
#include "sim/packet.hpp"
#include "traffic/flow_spec.hpp"
#include "util/types.hpp"

namespace emcast::core {

class TokenBucketRegulator {
 public:
  using Sink = sim::PacketFn;

  /// The bucket starts full (σ tokens) so an initial conformant burst is
  /// not delayed.
  TokenBucketRegulator(sim::SimContext ctx, traffic::FlowSpec spec, Sink sink);

  /// Submit a packet; forwarded immediately if conformant, else queued.
  /// A packet larger than the bucket depth σ can never conform and is
  /// rejected outright (counted in rejected()) instead of livelocking the
  /// release loop.
  void offer(sim::Packet p);

  const traffic::FlowSpec& spec() const { return spec_; }
  Bits tokens() const;  ///< current token level (refreshed to now)
  Bits backlog_bits() const { return queue_.backlog_bits(); }
  Bits peak_backlog_bits() const { return queue_.peak_backlog_bits(); }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t rejected() const { return rejected_; }  ///< oversized drops

  /// Self plus queued-entry heap (memory-budget convention, see Mux).
  std::size_t memory_bytes() const {
    return sizeof(*this) + queue_.heap_bytes();
  }

 private:
  void refill_to_now() const;
  void try_release();
  void schedule_release();

  sim::SimContext ctx_;
  traffic::FlowSpec spec_;
  Sink sink_;
  sim::FifoQueue queue_;
  mutable Bits tokens_;
  mutable Time last_refill_ = 0.0;
  sim::EventHandle pending_release_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace emcast::core
