#pragma once
// Sliding-window rate measurement.  Step 1 of the adaptive control
// algorithm: "end host g_j^i calculates the average input rate ρ̄ of the K̂
// real-time flows".  The estimator bins arriving bits into fixed-width
// time buckets and reports total bits over the window, which is O(1) per
// sample and immune to packet-rate spikes.

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace emcast::core {

class RateEstimator {
 public:
  /// `window` seconds of history, split into `bins` buckets.
  explicit RateEstimator(Time window = 1.0, std::size_t bins = 20);

  /// Record `bits` arriving at time `t` (monotonically non-decreasing).
  void record(Time t, Bits bits);

  /// Average rate over the trailing window at time `t` [bits/s].
  Rate rate_at(Time t) const;

  Time window() const { return window_; }

  /// Self plus bin heap (memory-budget convention, see core::Mux).
  std::size_t memory_bytes() const {
    return sizeof(*this) + bins_.capacity() * sizeof(Bits);
  }

 private:
  void advance_to(Time t) const;
  std::size_t bin_of(Time t) const;

  Time window_;
  Time bin_width_;
  mutable std::vector<Bits> bins_;
  mutable long long current_bin_ = 0;  ///< global index of newest bin
  mutable Bits total_ = 0;
};

}  // namespace emcast::core
