#include "core/token_bucket_regulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace emcast::core {

TokenBucketRegulator::TokenBucketRegulator(sim::SimContext ctx,
                                           traffic::FlowSpec spec, Sink sink)
    : ctx_(ctx), spec_(spec), sink_(std::move(sink)), tokens_(spec.sigma) {
  if (spec.sigma <= 0 || spec.rho <= 0) {
    throw std::invalid_argument("TokenBucketRegulator: σ and ρ must be > 0");
  }
  last_refill_ = ctx.now();
}

void TokenBucketRegulator::refill_to_now() const {
  const Time now = ctx_.now();
  tokens_ = std::min<Bits>(spec_.sigma,
                           tokens_ + spec_.rho * (now - last_refill_));
  last_refill_ = now;
}

Bits TokenBucketRegulator::tokens() const {
  refill_to_now();
  return tokens_;
}

void TokenBucketRegulator::offer(sim::Packet p) {
  if (p.size > spec_.sigma + 1e-9) {
    // Tokens cap at σ, so a packet larger than the bucket depth can never
    // conform: queueing it would wedge the head of the FIFO and livelock
    // the release loop (reschedule forever, forward nothing).  The
    // epsilon matches try_release's conformance slack.
    ++rejected_;
    return;
  }
  queue_.push(std::move(p));
  try_release();
}

void TokenBucketRegulator::try_release() {
  refill_to_now();
  while (!queue_.empty()) {
    const sim::Packet* head = queue_.front();
    if (tokens_ + 1e-9 < head->size) break;
    tokens_ -= head->size;
    ++forwarded_;
    sink_(queue_.pop());
  }
  if (!queue_.empty()) schedule_release();
}

void TokenBucketRegulator::schedule_release() {
  if (pending_release_.pending()) return;
  const Bits deficit = queue_.front()->size - tokens_;
  // Floor the wait at 1 ns: a sub-femtosecond wait can be below the
  // floating-point resolution of the clock, leaving now() unchanged and
  // spinning the event loop at a single timestamp.
  const Time wait = std::max(deficit / spec_.rho, 1e-9);
  pending_release_ = ctx_.schedule_in(wait, [this] { try_release(); });
}

}  // namespace emcast::core
