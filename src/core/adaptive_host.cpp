#include "core/adaptive_host.hpp"

#include <algorithm>
#include <stdexcept>

#include "netcalc/threshold.hpp"
#include "util/logging.hpp"

namespace emcast::core {

namespace {

double derive_threshold(const std::vector<traffic::FlowSpec>& flows) {
  const int k = static_cast<int>(flows.size());
  if (k < 2) return 1.0;  // a single flow never benefits from turn-taking
  return traffic::homogeneous(flows)
             ? netcalc::utilization_threshold_homogeneous(k)
             : netcalc::utilization_threshold_heterogeneous(k);
}

}  // namespace

AdaptiveHost::AdaptiveHost(sim::SimContext ctx, AdaptiveHostConfig config,
                           Sink sink)
    : ctx_(ctx),
      config_(std::move(config)),
      sink_(std::move(sink)),
      threshold_(config_.threshold_utilization > 0.0
                     ? config_.threshold_utilization
                     : derive_threshold(config_.flows)),
      mux_(ctx, config_.capacity,
           [this](sim::Packet p) { on_mux_output(std::move(p)); },
           config_.mux_discipline) {
  if (config_.flows.empty()) {
    throw std::invalid_argument("AdaptiveHost: no flows");
  }
  if (!traffic::stable(config_.flows, config_.capacity)) {
    throw std::invalid_argument(
        "AdaptiveHost: stability condition Σρᵢ ≤ C violated");
  }
  buckets_.reserve(config_.flows.size());
  for (const auto& f : config_.flows) {
    buckets_.push_back(std::make_unique<TokenBucketRegulator>(
        ctx_, f, [this](sim::Packet p) { mux_.offer(std::move(p)); }));
    estimators_.emplace_back(config_.estimator_window);
  }
  auto bank_flows = config_.flows;
  for (auto& f : bank_flows) f.sigma *= config_.lambda_sigma_margin;
  bank_ = std::make_unique<LambdaRegulatorBank>(
      ctx_, std::move(bank_flows), config_.capacity,
      [this](sim::Packet p) { mux_.offer(std::move(p)); },
      /*max_packet_bits=*/12000.0, config_.lambda_epoch_offset);
  bank_->pause();

  control_interval_ =
      config_.control_interval > 0.0
          ? config_.control_interval
          : std::max<Time>(bank_->schedule().period(), 0.1);

  switch (config_.mode) {
    case ControlMode::SigmaRho:
      activate(ControlMode::SigmaRho);
      break;
    case ControlMode::SigmaRhoLambda:
      activate(ControlMode::SigmaRhoLambda);
      break;
    case ControlMode::Adaptive:
      activate(ControlMode::SigmaRho);  // algorithm starts in (σ, ρ) model
      ctx_.schedule_in(control_interval_, [this] { control_tick(); });
      break;
  }
}

std::size_t AdaptiveHost::flow_index(FlowId id) const {
  for (std::size_t i = 0; i < config_.flows.size(); ++i) {
    if (config_.flows[i].id == id) return i;
  }
  throw std::invalid_argument("AdaptiveHost: unknown flow id");
}

void AdaptiveHost::set_warmup(Time t) { tracer_.set_warmup(t); }

std::size_t AdaptiveHost::memory_bytes() const {
  // memory-budget convention (see core::Mux): by-value members are
  // inside sizeof(*this) already, so only their heap is added.
  std::size_t bytes = sizeof(*this);
  bytes += mux_.memory_bytes() - sizeof(Mux);
  bytes += config_.flows.capacity() * sizeof(traffic::FlowSpec);
  bytes += buckets_.capacity() * sizeof(buckets_[0]);
  for (const auto& b : buckets_) {
    if (b) bytes += b->memory_bytes();
  }
  if (bank_) bytes += bank_->memory_bytes();
  bytes += estimators_.capacity() * sizeof(RateEstimator);
  for (const auto& e : estimators_) {
    bytes += e.memory_bytes() - sizeof(RateEstimator);
  }
  bytes += tracer_.memory_bytes() - sizeof(sim::DelayTracer);
  return bytes;
}

void AdaptiveHost::offer(sim::Packet p) {
  const std::size_t i = flow_index(p.flow);
  p.hop_arrival = ctx_.now();
  // General MUX (Section III): packets of one flow may have priority over
  // another's; the flow's declared class decides who overtakes whom.
  p.priority = static_cast<std::uint8_t>(std::min<std::size_t>(
      config_.flows[i].priority, Mux::kPriorityClasses - 1));
  estimators_[i].record(ctx_.now(), p.size);
  if (active_ == ControlMode::SigmaRhoLambda) {
    bank_->offer(std::move(p));
  } else {
    buckets_[i]->offer(std::move(p));
  }
}

void AdaptiveHost::on_mux_output(sim::Packet p) {
  tracer_.record_delay(p.flow, ctx_.now() - p.hop_arrival, ctx_.now());
  ++p.hops;
  sink_(std::move(p));
}

void AdaptiveHost::activate(ControlMode m) {
  if (m == ControlMode::Adaptive) {
    throw std::invalid_argument("activate: Adaptive is not a model");
  }
  if (m == active_ && (m == ControlMode::SigmaRhoLambda) == bank_->running()) {
    return;
  }
  active_ = m;
  if (m == ControlMode::SigmaRhoLambda) {
    bank_->resume();
  } else {
    // Migrate any backlog held by the bank into the token buckets so no
    // packet is stranded in a paused pipeline.
    bank_->pause();
    for (auto& p : bank_->drain()) {
      buckets_[flow_index(p.flow)]->offer(std::move(p));
    }
  }
}

double AdaptiveHost::measured_utilization() const {
  Rate sum = 0;
  for (const auto& est : estimators_) sum += est.rate_at(ctx_.now());
  return sum / config_.capacity;
}

void AdaptiveHost::control_tick() {
  last_utilization_ = measured_utilization();

  const double up = threshold_ * (1.0 + config_.hysteresis);
  const double down = threshold_ * (1.0 - config_.hysteresis);
  if (active_ == ControlMode::SigmaRho && last_utilization_ >= up) {
    util::log_debug("AdaptiveHost: ρ̄=", last_utilization_, " ≥ ", up,
                    " → (σ,ρ,λ) model");
    activate(ControlMode::SigmaRhoLambda);
    ++mode_switches_;
    last_mode_switch_ = ctx_.now();
  } else if (active_ == ControlMode::SigmaRhoLambda &&
             last_utilization_ <= down) {
    util::log_debug("AdaptiveHost: ρ̄=", last_utilization_, " ≤ ", down,
                    " → (σ,ρ) model");
    activate(ControlMode::SigmaRho);
    ++mode_switches_;
    last_mode_switch_ = ctx_.now();
  }
  ctx_.schedule_in(control_interval_, [this] { control_tick(); });
}

}  // namespace emcast::core
